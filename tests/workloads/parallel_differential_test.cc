/**
 * @file
 * ParallelDifferential: the parallel event engine (DESIGN.md §11)
 * and the zero-event fast path with commute-aware apply (DESIGN.md
 * §13) must be bit-identical to the plain sequential engine — same
 * cycles, same checksum, same instruction/branch/abort counts, same
 * SysStats — on the full {bus, directory} x {lazy, eager} matrix, in
 * both inline (engineThreads = 1) and forced-threaded
 * (engineThreads >= 2) modes, across all fast-path modes
 * {off, fastpath+serial apply, fastpath+commute apply}.
 * Follows the ShardDifferential pattern (differential_fullscan_test):
 * drive identically-configured runs and compare everything the
 * simulated machine can observe.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "runtime/executors.hh"
#include "workloads/gzip.hh"
#include "workloads/linked_list.hh"
#include "workloads/stress.hh"

namespace hmtx::workloads
{
namespace
{

/** Fast-path mode axis: off, fastpath with strictly-serial apply,
 *  fastpath with commute-aware apply. */
enum : unsigned
{
    kFpOff = 0,
    kFpSerial = 1,
    kFpCommute = 2,
};

using Combo = std::tuple<sim::Fabric, bool /*lazy*/,
                         unsigned /*engineThreads*/,
                         unsigned /*fast-path mode*/>;

/** Everything architecturally observable must match exactly.
 *  (parStats/fastStats/shardStats are simulator-side and excluded by
 *  design.) */
void
expectIdentical(const runtime::ExecResult& ref,
                const runtime::ExecResult& got)
{
    EXPECT_EQ(got.cycles, ref.cycles);
    EXPECT_EQ(got.checksum, ref.checksum);
    EXPECT_EQ(got.instructions, ref.instructions);
    EXPECT_EQ(got.transactions, ref.transactions);
    EXPECT_EQ(got.vidResets, ref.vidResets);
    EXPECT_EQ(got.branches, ref.branches);
    EXPECT_EQ(got.mispredicts, ref.mispredicts);
    EXPECT_TRUE(got.stats == ref.stats)
        << "SysStats diverged (aborts " << ref.stats.aborts << " vs "
        << got.stats.aborts << ", busTxns " << ref.stats.busTxns
        << " vs " << got.stats.busTxns << ", l1Hits "
        << ref.stats.l1Hits << " vs " << got.stats.l1Hits << ")";
}

class ParallelDifferential : public ::testing::TestWithParam<Combo>
{
  protected:
    /** Reference cell: plain sequential engine, fast path off. */
    static sim::MachineConfig
    makeRef(const Combo& c)
    {
        sim::MachineConfig cfg;
        cfg.fabric = std::get<0>(c);
        cfg.txMode = std::get<1>(c) ? TxMode::LazyHmtx
                                    : TxMode::EagerHmtx;
        cfg.engine = sim::SimEngine::Sequential;
        cfg.engineThreads = std::get<2>(c);
        return cfg;
    }

    /** Candidate cell: requested engine with the combo's fast mode. */
    static sim::MachineConfig
    make(const Combo& c, sim::SimEngine engine)
    {
        sim::MachineConfig cfg = makeRef(c);
        cfg.engine = engine;
        cfg.fastPath = std::get<3>(c) != kFpOff;
        cfg.applyCommute = std::get<3>(c) == kFpCommute;
        return cfg;
    }
};

TEST_P(ParallelDifferential, LinkedListBitIdentical)
{
    LinkedListWorkload::Params p;
    p.nodes = 80;
    p.workRounds = 16;
    LinkedListWorkload a(p), b(p), c(p);
    runtime::ExecResult ref =
        runtime::Runner::runHmtx(a, makeRef(GetParam()));
    // Sequential engine with the combo's fast mode: exercises the
    // zero-event bypass (EventQueue::tryBypass) on every pure hit.
    runtime::ExecResult rf = runtime::Runner::runHmtx(
        b, make(GetParam(), sim::SimEngine::Sequential));
    runtime::ExecResult rp = runtime::Runner::runHmtx(
        c, make(GetParam(), sim::SimEngine::Parallel));
    expectIdentical(ref, rf);
    expectIdentical(ref, rp);
    EXPECT_EQ(rp.parStats.rollbacks, 0u);
    EXPECT_GT(rp.parStats.sections, 0u);
    EXPECT_GT(rp.parStats.intents, 0u);
    if (std::get<3>(GetParam()) != kFpOff) {
        // The fast path must actually fire on this hit-heavy workload.
        // (eventBypasses is asserted in FastPathBypass below: on the
        // busier directory-fabric queues another event is usually
        // pending before the wake, so the bypass legally declines.)
        EXPECT_GT(rf.fastStats.hits(), 0u);
        EXPECT_GT(rp.fastStats.hits(), 0u);
    } else {
        EXPECT_EQ(rf.fastStats.attempts, 0u);
        EXPECT_EQ(rp.fastStats.attempts, 0u);
    }
    if (std::get<3>(GetParam()) == kFpCommute) {
        // Batches need >= 2 lane turns at one slot with nothing else
        // due there. The snoopy bus delivers that; the directory
        // fabric interleaves per-tick protocol callbacks, and every
        // callback forces a full serial drain first — so batching is
        // legitimately (and verifiably) rare there and not asserted.
        if (std::get<0>(GetParam()) == sim::Fabric::SnoopBus)
            EXPECT_GT(rp.parStats.commuteBatches, 0u);
    } else {
        EXPECT_EQ(rp.parStats.commuteBatches, 0u);
    }
}

TEST_P(ParallelDifferential, GzipBitIdentical)
{
    GzipWorkload::Params p;
    p.blocks = 8;
    p.wordsPerBlock = 120;
    GzipWorkload a(p), b(p), c(p);
    runtime::ExecResult ref =
        runtime::Runner::runHmtx(a, makeRef(GetParam()));
    runtime::ExecResult rf = runtime::Runner::runHmtx(
        b, make(GetParam(), sim::SimEngine::Sequential));
    runtime::ExecResult rp = runtime::Runner::runHmtx(
        c, make(GetParam(), sim::SimEngine::Parallel));
    expectIdentical(ref, rf);
    expectIdentical(ref, rp);
}

/** The abort/recovery path (misspeculation storms, group aborts,
 *  queue resets) must replay identically under staged execution and
 *  under the fast path: every abort bumps the generation and kills
 *  all outstanding tags. */
TEST_P(ParallelDifferential, StressConflictsBitIdentical)
{
    StressWorkload::Params p;
    p.iterations = 48;
    p.scratchWords = 24;
    p.conflictRate = 0.25;
    StressWorkload a(p), b(p), c(p);
    runtime::ExecResult ref =
        runtime::Runner::runHmtx(a, makeRef(GetParam()));
    runtime::ExecResult rf = runtime::Runner::runHmtx(
        b, make(GetParam(), sim::SimEngine::Sequential));
    runtime::ExecResult rp = runtime::Runner::runHmtx(
        c, make(GetParam(), sim::SimEngine::Parallel));
    expectIdentical(ref, rf);
    expectIdentical(ref, rp);
    EXPECT_GT(rp.stats.aborts, 0u); // the matrix cell really aborted
    EXPECT_EQ(rp.parStats.rollbacks, 0u);
}

/** Sequential runs (one lane, long staged sections) too. */
TEST_P(ParallelDifferential, SequentialScheduleBitIdentical)
{
    LinkedListWorkload::Params p;
    p.nodes = 60;
    LinkedListWorkload a(p), b(p), c(p);
    runtime::ExecResult ref =
        runtime::Runner::runSequential(a, makeRef(GetParam()));
    runtime::ExecResult rf = runtime::Runner::runSequential(
        b, make(GetParam(), sim::SimEngine::Sequential));
    runtime::ExecResult rp = runtime::Runner::runSequential(
        c, make(GetParam(), sim::SimEngine::Parallel));
    expectIdentical(ref, rf);
    expectIdentical(ref, rp);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParallelDifferential,
    ::testing::Combine(
        ::testing::Values(sim::Fabric::SnoopBus,
                          sim::Fabric::Directory),
        ::testing::Bool(),          // lazy / eager commit
        ::testing::Values(1u, 2u),  // inline / forced worker threads
        ::testing::Values(kFpOff, kFpSerial, kFpCommute)),
    [](const ::testing::TestParamInfo<Combo>& info) {
        std::string n;
        n += std::get<0>(info.param) == sim::Fabric::SnoopBus
            ? "snoop"
            : "dir";
        n += std::get<1>(info.param) ? "_lazy" : "_eager";
        n += std::get<2>(info.param) == 1 ? "_inline" : "_threaded";
        n += std::get<3>(info.param) == kFpOff ? "_fpoff"
            : std::get<3>(info.param) == kFpSerial ? "_fpserial"
                                                   : "_fpcommute";
        return n;
    });

/** Worker count and threading mode honor the engineThreads policy. */
TEST(ParallelEnginePolicy, WorkerClampAndIdleCores)
{
    LinkedListWorkload::Params p;
    p.nodes = 24;

    // Forced threads clamp to the simulated core count.
    sim::MachineConfig cfg;
    cfg.engine = sim::SimEngine::Parallel;
    cfg.engineThreads = 64; // > numCores (4)
    LinkedListWorkload a(p);
    runtime::ExecResult r = runtime::Runner::runHmtx(a, cfg);
    EXPECT_TRUE(r.parStats.threaded);
    EXPECT_EQ(r.parStats.workers, cfg.numCores);

    // Inline mode reports no workers; idleCores accounting must stay
    // identical to the sequential engine's (engine choice never
    // changes the simulated schedule).
    cfg.engineThreads = 1;
    LinkedListWorkload b(p), c(p);
    runtime::ExecResult ri = runtime::Runner::runHmtx(b, cfg);
    sim::MachineConfig scfg;
    runtime::ExecResult rs = runtime::Runner::runHmtx(c, scfg);
    EXPECT_FALSE(ri.parStats.threaded);
    EXPECT_EQ(ri.parStats.workers, 0u);
    EXPECT_EQ(ri.stats.idleCores, rs.stats.idleCores);
}

/** The bounded policies and copy-on-read must gate the fast path off
 *  entirely (no probes, no tags), even when the knob is set.
 *  (Sequential schedules: the bounded modes reject pipelined ones.) */
TEST(FastPathGate, BoundedPoliciesDisableFastPath)
{
    StressWorkload::Params p;
    p.iterations = 24;
    p.scratchWords = 16;
    for (TxMode mode : {TxMode::BestEffort, TxMode::LimitedSet}) {
        sim::MachineConfig on;
        on.txMode = mode;
        on.fastPath = true;
        sim::MachineConfig off = on;
        off.fastPath = false;
        StressWorkload a(p), b(p);
        runtime::ExecResult ron = runtime::Runner::runSequential(a, on);
        runtime::ExecResult roff =
            runtime::Runner::runSequential(b, off);
        EXPECT_EQ(ron.fastStats.attempts, 0u);
        EXPECT_EQ(ron.cycles, roff.cycles);
        EXPECT_TRUE(ron.stats == roff.stats);
    }
    sim::MachineConfig cor;
    cor.copyOnRead = true;
    cor.fastPath = true;
    StressWorkload d(p);
    runtime::ExecResult rcor = runtime::Runner::runSequential(d, cor);
    EXPECT_EQ(rcor.fastStats.attempts, 0u);
}

/** On a quiet queue (single-lane sequential schedule, snoopy bus) the
 *  fast path must retire hits with literally zero events: the
 *  event-queue bypass fires and executed() stays behind the
 *  fast-path-off run's count. */
TEST(FastPathBypass, SequentialHitsScheduleNoEvents)
{
    LinkedListWorkload::Params p;
    p.nodes = 60;
    p.workRounds = 16;
    sim::MachineConfig off;
    sim::MachineConfig on = off;
    on.fastPath = true;
    LinkedListWorkload a(p), b(p);
    runtime::ExecResult roff = runtime::Runner::runSequential(a, off);
    runtime::ExecResult ron = runtime::Runner::runSequential(b, on);
    EXPECT_EQ(ron.cycles, roff.cycles);
    EXPECT_EQ(ron.checksum, roff.checksum);
    EXPECT_TRUE(ron.stats == roff.stats);
    EXPECT_GT(ron.fastStats.hits(), 0u);
    EXPECT_GT(ron.fastStats.eventBypasses, 0u);
}

} // namespace
} // namespace hmtx::workloads
