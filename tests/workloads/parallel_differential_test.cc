/**
 * @file
 * ParallelDifferential: the parallel event engine (DESIGN.md §11)
 * must be bit-identical to the sequential engine — same cycles, same
 * checksum, same instruction/branch/abort counts, same SysStats — on
 * the full {bus, directory} x {lazy, eager} matrix, in both inline
 * (engineThreads = 1) and forced-threaded (engineThreads >= 2) modes.
 * Follows the ShardDifferential pattern (differential_fullscan_test):
 * drive two identically-configured runs and compare everything the
 * simulated machine can observe.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "runtime/executors.hh"
#include "workloads/gzip.hh"
#include "workloads/linked_list.hh"
#include "workloads/stress.hh"

namespace hmtx::workloads
{
namespace
{

using Combo = std::tuple<sim::Fabric, bool /*lazy*/,
                         unsigned /*engineThreads*/>;

/** Everything architecturally observable must match exactly.
 *  (parStats/shardStats are simulator-side and excluded by design.) */
void
expectIdentical(const runtime::ExecResult& seqEng,
                const runtime::ExecResult& parEng)
{
    EXPECT_EQ(parEng.cycles, seqEng.cycles);
    EXPECT_EQ(parEng.checksum, seqEng.checksum);
    EXPECT_EQ(parEng.instructions, seqEng.instructions);
    EXPECT_EQ(parEng.transactions, seqEng.transactions);
    EXPECT_EQ(parEng.vidResets, seqEng.vidResets);
    EXPECT_EQ(parEng.branches, seqEng.branches);
    EXPECT_EQ(parEng.mispredicts, seqEng.mispredicts);
    EXPECT_TRUE(parEng.stats == seqEng.stats)
        << "SysStats diverged (aborts " << seqEng.stats.aborts << " vs "
        << parEng.stats.aborts << ", busTxns " << seqEng.stats.busTxns
        << " vs " << parEng.stats.busTxns << ")";
}

class ParallelDifferential : public ::testing::TestWithParam<Combo>
{
  protected:
    static sim::MachineConfig
    make(const Combo& c, sim::SimEngine engine)
    {
        sim::MachineConfig cfg;
        cfg.fabric = std::get<0>(c);
        cfg.txMode = std::get<1>(c) ? TxMode::LazyHmtx
                                    : TxMode::EagerHmtx;
        cfg.engine = engine;
        cfg.engineThreads = std::get<2>(c);
        return cfg;
    }
};

TEST_P(ParallelDifferential, LinkedListBitIdentical)
{
    LinkedListWorkload::Params p;
    p.nodes = 80;
    p.workRounds = 16;
    LinkedListWorkload a(p), b(p);
    runtime::ExecResult rs = runtime::Runner::runHmtx(
        a, make(GetParam(), sim::SimEngine::Sequential));
    runtime::ExecResult rp = runtime::Runner::runHmtx(
        b, make(GetParam(), sim::SimEngine::Parallel));
    expectIdentical(rs, rp);
    EXPECT_EQ(rp.parStats.rollbacks, 0u);
    EXPECT_GT(rp.parStats.sections, 0u);
    EXPECT_GT(rp.parStats.intents, 0u);
}

TEST_P(ParallelDifferential, GzipBitIdentical)
{
    GzipWorkload::Params p;
    p.blocks = 8;
    p.wordsPerBlock = 120;
    GzipWorkload a(p), b(p);
    runtime::ExecResult rs = runtime::Runner::runHmtx(
        a, make(GetParam(), sim::SimEngine::Sequential));
    runtime::ExecResult rp = runtime::Runner::runHmtx(
        b, make(GetParam(), sim::SimEngine::Parallel));
    expectIdentical(rs, rp);
}

/** The abort/recovery path (misspeculation storms, group aborts,
 *  queue resets) must replay identically under staged execution. */
TEST_P(ParallelDifferential, StressConflictsBitIdentical)
{
    StressWorkload::Params p;
    p.iterations = 48;
    p.scratchWords = 24;
    p.conflictRate = 0.25;
    StressWorkload a(p), b(p);
    runtime::ExecResult rs = runtime::Runner::runHmtx(
        a, make(GetParam(), sim::SimEngine::Sequential));
    runtime::ExecResult rp = runtime::Runner::runHmtx(
        b, make(GetParam(), sim::SimEngine::Parallel));
    expectIdentical(rs, rp);
    EXPECT_GT(rp.stats.aborts, 0u); // the matrix cell really aborted
    EXPECT_EQ(rp.parStats.rollbacks, 0u);
}

/** Sequential runs (one lane, long staged sections) too. */
TEST_P(ParallelDifferential, SequentialScheduleBitIdentical)
{
    LinkedListWorkload::Params p;
    p.nodes = 60;
    LinkedListWorkload a(p), b(p);
    runtime::ExecResult rs = runtime::Runner::runSequential(
        a, make(GetParam(), sim::SimEngine::Sequential));
    runtime::ExecResult rp = runtime::Runner::runSequential(
        b, make(GetParam(), sim::SimEngine::Parallel));
    expectIdentical(rs, rp);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParallelDifferential,
    ::testing::Combine(
        ::testing::Values(sim::Fabric::SnoopBus,
                          sim::Fabric::Directory),
        ::testing::Bool(),          // lazy / eager commit
        ::testing::Values(1u, 2u)), // inline / forced worker threads
    [](const ::testing::TestParamInfo<Combo>& info) {
        std::string n;
        n += std::get<0>(info.param) == sim::Fabric::SnoopBus
            ? "snoop"
            : "dir";
        n += std::get<1>(info.param) ? "_lazy" : "_eager";
        n += std::get<2>(info.param) == 1 ? "_inline" : "_threaded";
        return n;
    });

/** Worker count and threading mode honor the engineThreads policy. */
TEST(ParallelEnginePolicy, WorkerClampAndIdleCores)
{
    LinkedListWorkload::Params p;
    p.nodes = 24;

    // Forced threads clamp to the simulated core count.
    sim::MachineConfig cfg;
    cfg.engine = sim::SimEngine::Parallel;
    cfg.engineThreads = 64; // > numCores (4)
    LinkedListWorkload a(p);
    runtime::ExecResult r = runtime::Runner::runHmtx(a, cfg);
    EXPECT_TRUE(r.parStats.threaded);
    EXPECT_EQ(r.parStats.workers, cfg.numCores);

    // Inline mode reports no workers; idleCores accounting must stay
    // identical to the sequential engine's (engine choice never
    // changes the simulated schedule).
    cfg.engineThreads = 1;
    LinkedListWorkload b(p), c(p);
    runtime::ExecResult ri = runtime::Runner::runHmtx(b, cfg);
    sim::MachineConfig scfg;
    runtime::ExecResult rs = runtime::Runner::runHmtx(c, scfg);
    EXPECT_FALSE(ri.parStats.threaded);
    EXPECT_EQ(ri.parStats.workers, 0u);
    EXPECT_EQ(ri.stats.idleCores, rs.stats.idleCores);
}

} // namespace
} // namespace hmtx::workloads
