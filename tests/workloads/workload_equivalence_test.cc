/**
 * @file
 * The central integration property of the whole system: for every
 * benchmark, speculative parallel execution under HMTX (with maximal
 * validation) produces bit-identical output to sequential execution,
 * with zero misspeculation — exactly the paper's §6.3 result.
 */

#include <gtest/gtest.h>

#include "runtime/executors.hh"
#include "workloads/all.hh"

namespace hmtx::workloads
{
namespace
{

sim::MachineConfig
cfg()
{
    sim::MachineConfig c; // Table 2 defaults (4 cores)
    return c;
}

class AllBenchmarks : public ::testing::TestWithParam<const char*>
{};

TEST_P(AllBenchmarks, HmtxParallelMatchesSequential)
{
    auto seq = makeByName(GetParam());
    auto par = makeByName(GetParam());
    ASSERT_TRUE(seq && par);

    runtime::ExecResult rs =
        runtime::Runner::runSequential(*seq, cfg());
    runtime::ExecResult rp = runtime::Runner::runHmtx(*par, cfg());

    EXPECT_EQ(rp.checksum, rs.checksum) << GetParam();
    // §6.3: "No misspeculation occurred in any of the benchmarks."
    EXPECT_EQ(rp.stats.aborts, 0u) << GetParam();
    EXPECT_EQ(rp.transactions, seq->iterations());
}

TEST_P(AllBenchmarks, SequentialIsDeterministic)
{
    auto a = makeByName(GetParam());
    auto b = makeByName(GetParam());
    runtime::ExecResult ra = runtime::Runner::runSequential(*a, cfg());
    runtime::ExecResult rb = runtime::Runner::runSequential(*b, cfg());
    EXPECT_EQ(ra.checksum, rb.checksum);
    EXPECT_EQ(ra.cycles, rb.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AllBenchmarks,
    ::testing::Values("052.alvinn", "130.li", "164.gzip",
                      "186.crafty", "197.parser", "256.bzip2",
                      "456.hmmer", "ispell"),
    [](const ::testing::TestParamInfo<const char*>& info) {
        std::string n = info.param;
        for (char& c : n)
            if (c == '.')
                c = '_';
        return n;
    });

} // namespace
} // namespace hmtx::workloads
