/**
 * @file
 * Tests of the area/power/energy model against the paper's McPAT
 * anchor points (Table 3).
 */

#include <gtest/gtest.h>

#include "power/model.hh"

namespace hmtx::power
{
namespace
{

sim::MachineConfig
table2()
{
    return sim::MachineConfig{}; // defaults = Table 2
}

TEST(PowerModel, BaseAreaMatchesTable3Anchor)
{
    PowerModel base(table2(), false);
    // Paper: 107.1 mm^2 for the commodity 4-core machine.
    EXPECT_NEAR(base.area().totalMm2(), 107.1, 5.0);
}

TEST(PowerModel, HmtxAreaOverheadIsAFewPercent)
{
    PowerModel base(table2(), false);
    PowerModel ext(table2(), true);
    double delta = ext.area().totalMm2() - base.area().totalMm2();
    // Paper: +4.0 mm^2, dominated by the 12 extra bits per line.
    EXPECT_NEAR(delta, 4.0, 1.5);
    EXPECT_GT(ext.area().hmtxExtraMm2, 0.0);
    EXPECT_LT(delta / base.area().totalMm2(), 0.06);
}

TEST(PowerModel, LeakageMatchesTable3Anchors)
{
    PowerModel base(table2(), false);
    PowerModel ext(table2(), true);
    EXPECT_NEAR(base.leakageW(), 5.515, 0.5);
    EXPECT_NEAR(ext.leakageW(), 5.607, 0.5);
    EXPECT_GT(ext.leakageW(), base.leakageW());
    // "Total leakage increases marginally" (§6.4).
    EXPECT_LT(ext.leakageW() / base.leakageW(), 1.05);
}

sim::SysStats
syntheticStats(std::uint64_t accesses)
{
    sim::SysStats s;
    s.l1Hits = accesses * 9 / 10;
    s.l1Misses = accesses / 10;
    s.snoopHits = accesses / 20;
    s.memFetches = accesses / 40;
    s.busTxns = accesses / 8;
    return s;
}

TEST(PowerModel, DynamicPowerScalesWithActivity)
{
    PowerModel m(table2(), true);
    Tick cycles = 1'000'000;
    PowerResult lo =
        m.evaluate(syntheticStats(100'000), 300'000, 50'000, 500,
                   cycles);
    PowerResult hi =
        m.evaluate(syntheticStats(800'000), 2'400'000, 400'000, 4'000,
                   cycles);
    EXPECT_GT(hi.dynamicW, lo.dynamicW);
    EXPECT_GT(lo.dynamicW, 0.0);
}

TEST(PowerModel, EnergyIsPowerTimesTime)
{
    PowerModel m(table2(), true);
    PowerResult r = m.evaluate(syntheticStats(400'000), 1'000'000,
                               100'000, 1'000, 2'000'000);
    EXPECT_NEAR(r.energyJ, (r.dynamicW + r.leakageW) * r.timeSec,
                1e-9);
    EXPECT_NEAR(r.timeSec, 2'000'000 / 2.0e9, 1e-12);
}

TEST(PowerModel, HmtxExtensionsCostLittleOnNonHmtxCode)
{
    // §6.4: running SMTX/sequential code on HMTX hardware increases
    // power only marginally (the VID columns still leak, comparators
    // idle).
    PowerModel base(table2(), false);
    PowerModel ext(table2(), true);
    auto s = syntheticStats(500'000);
    PowerResult rb = base.evaluate(s, 1'500'000, 0, 0, 3'000'000);
    PowerResult re = ext.evaluate(s, 1'500'000, 0, 0, 3'000'000);
    EXPECT_GT(re.energyJ, rb.energyJ);
    EXPECT_LT(re.energyJ / rb.energyJ, 1.03);
}

TEST(PowerModel, BiggerCachesCostMoreArea)
{
    sim::MachineConfig small = table2();
    small.l2SizeKB = 8 * 1024;
    PowerModel ms(small, false);
    PowerModel mb(table2(), false);
    EXPECT_LT(ms.area().totalMm2(), mb.area().totalMm2());
}

} // namespace
} // namespace hmtx::power
