file(REMOVE_RECURSE
  "CMakeFiles/ablation_lazy_commit.dir/ablation_lazy_commit.cc.o"
  "CMakeFiles/ablation_lazy_commit.dir/ablation_lazy_commit.cc.o.d"
  "ablation_lazy_commit"
  "ablation_lazy_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lazy_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
