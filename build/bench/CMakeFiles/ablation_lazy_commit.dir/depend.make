# Empty dependencies file for ablation_lazy_commit.
# This may be replaced when dependencies are built.
