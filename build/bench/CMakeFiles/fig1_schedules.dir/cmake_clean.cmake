file(REMOVE_RECURSE
  "CMakeFiles/fig1_schedules.dir/fig1_schedules.cc.o"
  "CMakeFiles/fig1_schedules.dir/fig1_schedules.cc.o.d"
  "fig1_schedules"
  "fig1_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
