# Empty compiler generated dependencies file for fig1_schedules.
# This may be replaced when dependencies are built.
