# Empty dependencies file for fig2_smtx_rwset.
# This may be replaced when dependencies are built.
