file(REMOVE_RECURSE
  "CMakeFiles/fig2_smtx_rwset.dir/fig2_smtx_rwset.cc.o"
  "CMakeFiles/fig2_smtx_rwset.dir/fig2_smtx_rwset.cc.o.d"
  "fig2_smtx_rwset"
  "fig2_smtx_rwset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_smtx_rwset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
