# Empty compiler generated dependencies file for ext_paradigm_comparison.
# This may be replaced when dependencies are built.
