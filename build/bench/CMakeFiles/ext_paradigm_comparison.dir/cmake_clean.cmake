file(REMOVE_RECURSE
  "CMakeFiles/ext_paradigm_comparison.dir/ext_paradigm_comparison.cc.o"
  "CMakeFiles/ext_paradigm_comparison.dir/ext_paradigm_comparison.cc.o.d"
  "ext_paradigm_comparison"
  "ext_paradigm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_paradigm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
