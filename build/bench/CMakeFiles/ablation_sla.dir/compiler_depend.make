# Empty compiler generated dependencies file for ablation_sla.
# This may be replaced when dependencies are built.
