file(REMOVE_RECURSE
  "CMakeFiles/ablation_sla.dir/ablation_sla.cc.o"
  "CMakeFiles/ablation_sla.dir/ablation_sla.cc.o.d"
  "ablation_sla"
  "ablation_sla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
