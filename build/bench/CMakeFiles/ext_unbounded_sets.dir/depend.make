# Empty dependencies file for ext_unbounded_sets.
# This may be replaced when dependencies are built.
