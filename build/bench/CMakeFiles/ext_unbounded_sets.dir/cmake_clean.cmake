file(REMOVE_RECURSE
  "CMakeFiles/ext_unbounded_sets.dir/ext_unbounded_sets.cc.o"
  "CMakeFiles/ext_unbounded_sets.dir/ext_unbounded_sets.cc.o.d"
  "ext_unbounded_sets"
  "ext_unbounded_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_unbounded_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
