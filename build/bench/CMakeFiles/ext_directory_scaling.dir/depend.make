# Empty dependencies file for ext_directory_scaling.
# This may be replaced when dependencies are built.
