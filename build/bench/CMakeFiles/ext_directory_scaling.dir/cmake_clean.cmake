file(REMOVE_RECURSE
  "CMakeFiles/ext_directory_scaling.dir/ext_directory_scaling.cc.o"
  "CMakeFiles/ext_directory_scaling.dir/ext_directory_scaling.cc.o.d"
  "ext_directory_scaling"
  "ext_directory_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_directory_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
