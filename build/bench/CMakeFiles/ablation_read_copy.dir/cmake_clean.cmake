file(REMOVE_RECURSE
  "CMakeFiles/ablation_read_copy.dir/ablation_read_copy.cc.o"
  "CMakeFiles/ablation_read_copy.dir/ablation_read_copy.cc.o.d"
  "ablation_read_copy"
  "ablation_read_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_read_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
