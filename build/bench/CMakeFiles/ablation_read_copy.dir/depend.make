# Empty dependencies file for ablation_read_copy.
# This may be replaced when dependencies are built.
