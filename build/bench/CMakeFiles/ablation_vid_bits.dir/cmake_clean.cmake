file(REMOVE_RECURSE
  "CMakeFiles/ablation_vid_bits.dir/ablation_vid_bits.cc.o"
  "CMakeFiles/ablation_vid_bits.dir/ablation_vid_bits.cc.o.d"
  "ablation_vid_bits"
  "ablation_vid_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vid_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
