# Empty dependencies file for ablation_vid_bits.
# This may be replaced when dependencies are built.
