# Empty compiler generated dependencies file for hmtx_power.
# This may be replaced when dependencies are built.
