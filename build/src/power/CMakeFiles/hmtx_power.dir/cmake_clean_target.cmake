file(REMOVE_RECURSE
  "libhmtx_power.a"
)
