file(REMOVE_RECURSE
  "CMakeFiles/hmtx_power.dir/model.cc.o"
  "CMakeFiles/hmtx_power.dir/model.cc.o.d"
  "libhmtx_power.a"
  "libhmtx_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmtx_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
