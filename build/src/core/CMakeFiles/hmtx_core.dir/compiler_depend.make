# Empty compiler generated dependencies file for hmtx_core.
# This may be replaced when dependencies are built.
