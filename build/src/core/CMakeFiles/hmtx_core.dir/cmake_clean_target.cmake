file(REMOVE_RECURSE
  "libhmtx_core.a"
)
