file(REMOVE_RECURSE
  "CMakeFiles/hmtx_core.dir/version_rules.cc.o"
  "CMakeFiles/hmtx_core.dir/version_rules.cc.o.d"
  "libhmtx_core.a"
  "libhmtx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmtx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
