# Empty dependencies file for hmtx_runtime.
# This may be replaced when dependencies are built.
