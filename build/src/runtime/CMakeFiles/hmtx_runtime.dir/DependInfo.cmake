
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/executors.cc" "src/runtime/CMakeFiles/hmtx_runtime.dir/executors.cc.o" "gcc" "src/runtime/CMakeFiles/hmtx_runtime.dir/executors.cc.o.d"
  "/root/repo/src/runtime/machine.cc" "src/runtime/CMakeFiles/hmtx_runtime.dir/machine.cc.o" "gcc" "src/runtime/CMakeFiles/hmtx_runtime.dir/machine.cc.o.d"
  "/root/repo/src/runtime/queue.cc" "src/runtime/CMakeFiles/hmtx_runtime.dir/queue.cc.o" "gcc" "src/runtime/CMakeFiles/hmtx_runtime.dir/queue.cc.o.d"
  "/root/repo/src/runtime/thread_context.cc" "src/runtime/CMakeFiles/hmtx_runtime.dir/thread_context.cc.o" "gcc" "src/runtime/CMakeFiles/hmtx_runtime.dir/thread_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hmtx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hmtx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
