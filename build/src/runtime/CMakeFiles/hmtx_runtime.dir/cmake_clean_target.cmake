file(REMOVE_RECURSE
  "libhmtx_runtime.a"
)
