file(REMOVE_RECURSE
  "CMakeFiles/hmtx_runtime.dir/executors.cc.o"
  "CMakeFiles/hmtx_runtime.dir/executors.cc.o.d"
  "CMakeFiles/hmtx_runtime.dir/machine.cc.o"
  "CMakeFiles/hmtx_runtime.dir/machine.cc.o.d"
  "CMakeFiles/hmtx_runtime.dir/queue.cc.o"
  "CMakeFiles/hmtx_runtime.dir/queue.cc.o.d"
  "CMakeFiles/hmtx_runtime.dir/thread_context.cc.o"
  "CMakeFiles/hmtx_runtime.dir/thread_context.cc.o.d"
  "libhmtx_runtime.a"
  "libhmtx_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmtx_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
