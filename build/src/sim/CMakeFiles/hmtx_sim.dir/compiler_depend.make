# Empty compiler generated dependencies file for hmtx_sim.
# This may be replaced when dependencies are built.
