file(REMOVE_RECURSE
  "CMakeFiles/hmtx_sim.dir/cache_system.cc.o"
  "CMakeFiles/hmtx_sim.dir/cache_system.cc.o.d"
  "libhmtx_sim.a"
  "libhmtx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmtx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
