file(REMOVE_RECURSE
  "libhmtx_sim.a"
)
