file(REMOVE_RECURSE
  "libhmtx_workloads.a"
)
