# Empty compiler generated dependencies file for hmtx_workloads.
# This may be replaced when dependencies are built.
