file(REMOVE_RECURSE
  "CMakeFiles/hmtx_workloads.dir/all.cc.o"
  "CMakeFiles/hmtx_workloads.dir/all.cc.o.d"
  "CMakeFiles/hmtx_workloads.dir/alvinn.cc.o"
  "CMakeFiles/hmtx_workloads.dir/alvinn.cc.o.d"
  "CMakeFiles/hmtx_workloads.dir/bzip2.cc.o"
  "CMakeFiles/hmtx_workloads.dir/bzip2.cc.o.d"
  "CMakeFiles/hmtx_workloads.dir/crafty.cc.o"
  "CMakeFiles/hmtx_workloads.dir/crafty.cc.o.d"
  "CMakeFiles/hmtx_workloads.dir/gzip.cc.o"
  "CMakeFiles/hmtx_workloads.dir/gzip.cc.o.d"
  "CMakeFiles/hmtx_workloads.dir/hmmer.cc.o"
  "CMakeFiles/hmtx_workloads.dir/hmmer.cc.o.d"
  "CMakeFiles/hmtx_workloads.dir/ispell.cc.o"
  "CMakeFiles/hmtx_workloads.dir/ispell.cc.o.d"
  "CMakeFiles/hmtx_workloads.dir/li.cc.o"
  "CMakeFiles/hmtx_workloads.dir/li.cc.o.d"
  "CMakeFiles/hmtx_workloads.dir/linked_list.cc.o"
  "CMakeFiles/hmtx_workloads.dir/linked_list.cc.o.d"
  "CMakeFiles/hmtx_workloads.dir/parser.cc.o"
  "CMakeFiles/hmtx_workloads.dir/parser.cc.o.d"
  "CMakeFiles/hmtx_workloads.dir/stress.cc.o"
  "CMakeFiles/hmtx_workloads.dir/stress.cc.o.d"
  "CMakeFiles/hmtx_workloads.dir/worklist.cc.o"
  "CMakeFiles/hmtx_workloads.dir/worklist.cc.o.d"
  "libhmtx_workloads.a"
  "libhmtx_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmtx_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
