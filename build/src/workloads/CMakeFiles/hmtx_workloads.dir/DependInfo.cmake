
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/all.cc" "src/workloads/CMakeFiles/hmtx_workloads.dir/all.cc.o" "gcc" "src/workloads/CMakeFiles/hmtx_workloads.dir/all.cc.o.d"
  "/root/repo/src/workloads/alvinn.cc" "src/workloads/CMakeFiles/hmtx_workloads.dir/alvinn.cc.o" "gcc" "src/workloads/CMakeFiles/hmtx_workloads.dir/alvinn.cc.o.d"
  "/root/repo/src/workloads/bzip2.cc" "src/workloads/CMakeFiles/hmtx_workloads.dir/bzip2.cc.o" "gcc" "src/workloads/CMakeFiles/hmtx_workloads.dir/bzip2.cc.o.d"
  "/root/repo/src/workloads/crafty.cc" "src/workloads/CMakeFiles/hmtx_workloads.dir/crafty.cc.o" "gcc" "src/workloads/CMakeFiles/hmtx_workloads.dir/crafty.cc.o.d"
  "/root/repo/src/workloads/gzip.cc" "src/workloads/CMakeFiles/hmtx_workloads.dir/gzip.cc.o" "gcc" "src/workloads/CMakeFiles/hmtx_workloads.dir/gzip.cc.o.d"
  "/root/repo/src/workloads/hmmer.cc" "src/workloads/CMakeFiles/hmtx_workloads.dir/hmmer.cc.o" "gcc" "src/workloads/CMakeFiles/hmtx_workloads.dir/hmmer.cc.o.d"
  "/root/repo/src/workloads/ispell.cc" "src/workloads/CMakeFiles/hmtx_workloads.dir/ispell.cc.o" "gcc" "src/workloads/CMakeFiles/hmtx_workloads.dir/ispell.cc.o.d"
  "/root/repo/src/workloads/li.cc" "src/workloads/CMakeFiles/hmtx_workloads.dir/li.cc.o" "gcc" "src/workloads/CMakeFiles/hmtx_workloads.dir/li.cc.o.d"
  "/root/repo/src/workloads/linked_list.cc" "src/workloads/CMakeFiles/hmtx_workloads.dir/linked_list.cc.o" "gcc" "src/workloads/CMakeFiles/hmtx_workloads.dir/linked_list.cc.o.d"
  "/root/repo/src/workloads/parser.cc" "src/workloads/CMakeFiles/hmtx_workloads.dir/parser.cc.o" "gcc" "src/workloads/CMakeFiles/hmtx_workloads.dir/parser.cc.o.d"
  "/root/repo/src/workloads/stress.cc" "src/workloads/CMakeFiles/hmtx_workloads.dir/stress.cc.o" "gcc" "src/workloads/CMakeFiles/hmtx_workloads.dir/stress.cc.o.d"
  "/root/repo/src/workloads/worklist.cc" "src/workloads/CMakeFiles/hmtx_workloads.dir/worklist.cc.o" "gcc" "src/workloads/CMakeFiles/hmtx_workloads.dir/worklist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/hmtx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmtx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hmtx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
