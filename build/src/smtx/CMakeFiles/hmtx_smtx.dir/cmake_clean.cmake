file(REMOVE_RECURSE
  "CMakeFiles/hmtx_smtx.dir/smtx.cc.o"
  "CMakeFiles/hmtx_smtx.dir/smtx.cc.o.d"
  "libhmtx_smtx.a"
  "libhmtx_smtx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmtx_smtx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
