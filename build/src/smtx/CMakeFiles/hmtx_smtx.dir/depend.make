# Empty dependencies file for hmtx_smtx.
# This may be replaced when dependencies are built.
