file(REMOVE_RECURSE
  "libhmtx_smtx.a"
)
