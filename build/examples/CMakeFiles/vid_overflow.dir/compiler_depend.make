# Empty compiler generated dependencies file for vid_overflow.
# This may be replaced when dependencies are built.
