file(REMOVE_RECURSE
  "CMakeFiles/vid_overflow.dir/vid_overflow.cpp.o"
  "CMakeFiles/vid_overflow.dir/vid_overflow.cpp.o.d"
  "vid_overflow"
  "vid_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vid_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
