file(REMOVE_RECURSE
  "CMakeFiles/benchmark_driver.dir/benchmark_driver.cpp.o"
  "CMakeFiles/benchmark_driver.dir/benchmark_driver.cpp.o.d"
  "benchmark_driver"
  "benchmark_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
