# Empty dependencies file for benchmark_driver.
# This may be replaced when dependencies are built.
