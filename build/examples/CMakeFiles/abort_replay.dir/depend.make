# Empty dependencies file for abort_replay.
# This may be replaced when dependencies are built.
