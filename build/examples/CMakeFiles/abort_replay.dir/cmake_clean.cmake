file(REMOVE_RECURSE
  "CMakeFiles/abort_replay.dir/abort_replay.cpp.o"
  "CMakeFiles/abort_replay.dir/abort_replay.cpp.o.d"
  "abort_replay"
  "abort_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abort_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
