file(REMOVE_RECURSE
  "CMakeFiles/stress_chaos_test.dir/stress_chaos_test.cc.o"
  "CMakeFiles/stress_chaos_test.dir/stress_chaos_test.cc.o.d"
  "stress_chaos_test"
  "stress_chaos_test.pdb"
  "stress_chaos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
