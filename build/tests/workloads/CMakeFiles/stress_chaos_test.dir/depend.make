# Empty dependencies file for stress_chaos_test.
# This may be replaced when dependencies are built.
