# Empty compiler generated dependencies file for workload_character_test.
# This may be replaced when dependencies are built.
