file(REMOVE_RECURSE
  "CMakeFiles/workload_character_test.dir/workload_character_test.cc.o"
  "CMakeFiles/workload_character_test.dir/workload_character_test.cc.o.d"
  "workload_character_test"
  "workload_character_test.pdb"
  "workload_character_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_character_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
