file(REMOVE_RECURSE
  "CMakeFiles/workload_equivalence_test.dir/workload_equivalence_test.cc.o"
  "CMakeFiles/workload_equivalence_test.dir/workload_equivalence_test.cc.o.d"
  "workload_equivalence_test"
  "workload_equivalence_test.pdb"
  "workload_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
