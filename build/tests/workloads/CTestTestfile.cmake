# CMake generated Testfile for 
# Source directory: /root/repo/tests/workloads
# Build directory: /root/repo/build/tests/workloads
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/workloads/workload_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/workloads/workload_character_test[1]_include.cmake")
include("/root/repo/build/tests/workloads/framework_test[1]_include.cmake")
include("/root/repo/build/tests/workloads/config_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/workloads/stress_chaos_test[1]_include.cmake")
