# Empty dependencies file for cache_system_spec_test.
# This may be replaced when dependencies are built.
