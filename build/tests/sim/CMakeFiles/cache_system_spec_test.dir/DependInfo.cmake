
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/cache_system_spec_test.cc" "tests/sim/CMakeFiles/cache_system_spec_test.dir/cache_system_spec_test.cc.o" "gcc" "tests/sim/CMakeFiles/cache_system_spec_test.dir/cache_system_spec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/hmtx_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/smtx/CMakeFiles/hmtx_smtx.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hmtx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/hmtx_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hmtx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hmtx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
