# Empty dependencies file for cache_system_lazy_eager_test.
# This may be replaced when dependencies are built.
