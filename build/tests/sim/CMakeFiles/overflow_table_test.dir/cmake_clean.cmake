file(REMOVE_RECURSE
  "CMakeFiles/overflow_table_test.dir/overflow_table_test.cc.o"
  "CMakeFiles/overflow_table_test.dir/overflow_table_test.cc.o.d"
  "overflow_table_test"
  "overflow_table_test.pdb"
  "overflow_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overflow_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
