# Empty compiler generated dependencies file for overflow_table_test.
# This may be replaced when dependencies are built.
