# Empty dependencies file for cache_system_basic_test.
# This may be replaced when dependencies are built.
