file(REMOVE_RECURSE
  "CMakeFiles/cache_system_sla_test.dir/cache_system_sla_test.cc.o"
  "CMakeFiles/cache_system_sla_test.dir/cache_system_sla_test.cc.o.d"
  "cache_system_sla_test"
  "cache_system_sla_test.pdb"
  "cache_system_sla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_system_sla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
