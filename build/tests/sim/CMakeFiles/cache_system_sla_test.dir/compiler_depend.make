# Empty compiler generated dependencies file for cache_system_sla_test.
# This may be replaced when dependencies are built.
