# Empty dependencies file for unbounded_sets_test.
# This may be replaced when dependencies are built.
