file(REMOVE_RECURSE
  "CMakeFiles/unbounded_sets_test.dir/unbounded_sets_test.cc.o"
  "CMakeFiles/unbounded_sets_test.dir/unbounded_sets_test.cc.o.d"
  "unbounded_sets_test"
  "unbounded_sets_test.pdb"
  "unbounded_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unbounded_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
