file(REMOVE_RECURSE
  "CMakeFiles/directory_fabric_test.dir/directory_fabric_test.cc.o"
  "CMakeFiles/directory_fabric_test.dir/directory_fabric_test.cc.o.d"
  "directory_fabric_test"
  "directory_fabric_test.pdb"
  "directory_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
