# Empty dependencies file for directory_fabric_test.
# This may be replaced when dependencies are built.
