# Empty dependencies file for cache_system_overflow_test.
# This may be replaced when dependencies are built.
