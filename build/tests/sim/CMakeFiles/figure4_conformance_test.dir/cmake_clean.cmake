file(REMOVE_RECURSE
  "CMakeFiles/figure4_conformance_test.dir/figure4_conformance_test.cc.o"
  "CMakeFiles/figure4_conformance_test.dir/figure4_conformance_test.cc.o.d"
  "figure4_conformance_test"
  "figure4_conformance_test.pdb"
  "figure4_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
