# Empty compiler generated dependencies file for figure4_conformance_test.
# This may be replaced when dependencies are built.
