# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/sim/task_test[1]_include.cmake")
include("/root/repo/build/tests/sim/cache_system_basic_test[1]_include.cmake")
include("/root/repo/build/tests/sim/cache_system_spec_test[1]_include.cmake")
include("/root/repo/build/tests/sim/cache_system_sla_test[1]_include.cmake")
include("/root/repo/build/tests/sim/cache_system_overflow_test[1]_include.cmake")
include("/root/repo/build/tests/sim/cache_system_property_test[1]_include.cmake")
include("/root/repo/build/tests/sim/cache_system_sharing_test[1]_include.cmake")
include("/root/repo/build/tests/sim/cache_system_lazy_eager_test[1]_include.cmake")
include("/root/repo/build/tests/sim/cache_test[1]_include.cmake")
include("/root/repo/build/tests/sim/branch_predictor_test[1]_include.cmake")
include("/root/repo/build/tests/sim/memory_test[1]_include.cmake")
include("/root/repo/build/tests/sim/directory_fabric_test[1]_include.cmake")
include("/root/repo/build/tests/sim/unbounded_sets_test[1]_include.cmake")
include("/root/repo/build/tests/sim/trace_test[1]_include.cmake")
include("/root/repo/build/tests/sim/figure4_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/sim/overflow_table_test[1]_include.cmake")
include("/root/repo/build/tests/sim/stats_test[1]_include.cmake")
