# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/version_rules_test[1]_include.cmake")
include("/root/repo/build/tests/core/vid_window_test[1]_include.cmake")
include("/root/repo/build/tests/core/comparator_test[1]_include.cmake")
include("/root/repo/build/tests/core/sla_unit_test[1]_include.cmake")
