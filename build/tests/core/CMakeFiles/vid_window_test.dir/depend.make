# Empty dependencies file for vid_window_test.
# This may be replaced when dependencies are built.
