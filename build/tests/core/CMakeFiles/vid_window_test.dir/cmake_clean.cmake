file(REMOVE_RECURSE
  "CMakeFiles/vid_window_test.dir/vid_window_test.cc.o"
  "CMakeFiles/vid_window_test.dir/vid_window_test.cc.o.d"
  "vid_window_test"
  "vid_window_test.pdb"
  "vid_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vid_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
