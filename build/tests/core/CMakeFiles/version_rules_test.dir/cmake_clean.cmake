file(REMOVE_RECURSE
  "CMakeFiles/version_rules_test.dir/version_rules_test.cc.o"
  "CMakeFiles/version_rules_test.dir/version_rules_test.cc.o.d"
  "version_rules_test"
  "version_rules_test.pdb"
  "version_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
