# Empty dependencies file for version_rules_test.
# This may be replaced when dependencies are built.
