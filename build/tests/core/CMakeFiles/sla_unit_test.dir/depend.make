# Empty dependencies file for sla_unit_test.
# This may be replaced when dependencies are built.
