file(REMOVE_RECURSE
  "CMakeFiles/sla_unit_test.dir/sla_unit_test.cc.o"
  "CMakeFiles/sla_unit_test.dir/sla_unit_test.cc.o.d"
  "sla_unit_test"
  "sla_unit_test.pdb"
  "sla_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
