# Empty dependencies file for tx_output_test.
# This may be replaced when dependencies are built.
