file(REMOVE_RECURSE
  "CMakeFiles/tx_output_test.dir/tx_output_test.cc.o"
  "CMakeFiles/tx_output_test.dir/tx_output_test.cc.o.d"
  "tx_output_test"
  "tx_output_test.pdb"
  "tx_output_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tx_output_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
