# Empty compiler generated dependencies file for smtx_test.
# This may be replaced when dependencies are built.
