file(REMOVE_RECURSE
  "CMakeFiles/smtx_test.dir/smtx_test.cc.o"
  "CMakeFiles/smtx_test.dir/smtx_test.cc.o.d"
  "smtx_test"
  "smtx_test.pdb"
  "smtx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
