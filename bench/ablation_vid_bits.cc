/**
 * @file
 * Ablation of the VID width m (§4.5/§4.6): narrow VIDs shrink the
 * per-line metadata but exhaust the window quickly, stalling the
 * DSWP pipeline on every VID reset until the maximum VID commits.
 * The paper "settled on 6 as a fair medium".
 */

#include "bench/common.hh"

using namespace hmtx;
using namespace hmtx::bench;

int
main()
{
    std::printf("Ablation §4.6: VID width vs. reset stalls "
                "(PS-DSWP, 4 cores)\n");

    for (const char* name : {"164.gzip", "ispell"}) {
        auto seqWl = workloads::makeByName(name);
        sim::MachineConfig base;
        applyEngineEnv(base);
        runtime::ExecResult seq =
            runtime::Runner::runSequential(*seqWl, base);

        std::printf("\n%s (%llu iterations)\n", name,
                    static_cast<unsigned long long>(
                        seqWl->iterations()));
        rule(84);
        std::printf("%-6s | %-12s | %-9s | %-10s | %-13s | %-12s\n",
                    "m", "cycles", "speedup", "VID resets",
                    "stall cycles", "extra bits/l");
        rule(84);
        for (unsigned bits : {3u, 4u, 6u, 8u}) {
            sim::MachineConfig cfg;
            applyEngineEnv(cfg);
            cfg.vidBits = bits;
            auto wl = workloads::makeByName(name);
            runtime::ExecResult r = runtime::Runner::runHmtx(*wl, cfg);
            requireChecksum(name, seq, r);
            std::printf(
                "%-6u | %12llu | %8.2fx | %10llu | %13llu | %12u\n",
                bits, static_cast<unsigned long long>(r.cycles),
                speedup(seq, r),
                static_cast<unsigned long long>(r.vidResets),
                static_cast<unsigned long long>(r.vidStallCycles),
                2 * bits);
        }
        rule(84);
    }
    std::printf(
        "\nSmall m: frequent resets stall the pipeline until the "
        "max-VID transaction commits.\nLarge m: more SRAM bits per "
        "line and wider comparators (§4.5). m = 6 balances the\n"
        "two, as the paper chose.\n");
    return 0;
}
