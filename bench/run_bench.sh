#!/usr/bin/env bash
# Builds the benchmarks in Release mode and produces two JSON reports:
#
#   BENCH_hotpath.json  micro_hotpath google-benchmark results
#                       (indexed vs forced full scan, seed and Table 2
#                       geometries; zero-event fast path off vs on on
#                       the hit-dominated stream) plus end-to-end
#                       fig8_speedup timings.
#   BENCH_scaling.json  ext_directory_scaling cores x fabric sweep
#                       (snoop bus vs directory, 2-32 cores) plus the
#                       sharded-engine host-throughput sweep (shards=1
#                       vs shards=host CPUs at 16/32 simulated cores)
#                       and the apply=serial|commute / fast-path sweep
#                       on the parallel engine; the run fails if the
#                       directory fabric is not at least as fast as
#                       the bus from 8 cores up, or if (on a multi-CPU
#                       host) the sharded engine falls short of 1.5x
#                       on the bulk-walk-heavy config or commute apply
#                       is not faster than serial apply.
#   BENCH_modes.json    ext_mode_crossover commit-mode sweep (full
#                       HMTX with unbounded sets vs best-effort HTM
#                       with the serialized fallback, rising stores
#                       per transaction on both fabrics); the run
#                       fails if no crossover exists on either fabric.
#   BENCH_serving.json  ext_kv_serving open-loop KV/OLTP serving sweep
#                       (1.2M requests: modes x fabrics x Zipf skew x
#                       write mix with streaming p50/p99/p999) plus
#                       the streaming-vs-naive host-throughput profile
#                       ci/check.sh gates against; the run fails if no
#                       cell shows best-effort degrading p999 >= 1.2x
#                       vs lazy HMTX.
#
# Run from the repository root:
#
#   bench/run_bench.sh [build-dir] [hotpath.json] [scaling.json]
#                      [modes.json] [serving.json]
#
# A smoke ctest (bench_hotpath_smoke) asserting indexed/full-scan
# behavioural identity runs as part of the normal test suite; this
# script is the measurement companion.

set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build-release"}
OUT=${2:-"$ROOT/BENCH_hotpath.json"}
SCALING_OUT=${3:-"$ROOT/BENCH_scaling.json"}
MODES_OUT=${4:-"$ROOT/BENCH_modes.json"}
SERVING_OUT=${5:-"$ROOT/BENCH_serving.json"}
RUNS=${FIG8_RUNS:-3}

# Configure through the release preset so the benchmark binaries get
# the same flags as CI; a custom build dir falls back to an explicit
# Release configure. Either way micro_hotpath bakes in its build type
# and the JSON gate below rejects anything but "Release" — a debug
# binary here once produced plausible-looking but 10x-slow baselines.
if [[ "$BUILD" == "$ROOT/build-release" ]]; then
    (cd "$ROOT" && cmake --preset release)
else
    cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" -j \
    --target micro_hotpath fig8_speedup ext_directory_scaling \
    ext_mode_crossover ext_kv_serving

echo "== ext_directory_scaling (cores x fabric sweep) =="
"$BUILD/bench/ext_directory_scaling" "$SCALING_OUT"

echo "== ext_mode_crossover (commit-mode write-set sweep) =="
"$BUILD/bench/ext_mode_crossover" "$MODES_OUT"

echo "== ext_kv_serving (open-loop serving sweep, 1.2M requests) =="
"$BUILD/bench/ext_kv_serving" "$SERVING_OUT"

echo "== micro_hotpath smoke (behavioural identity + speedup bound) =="
"$BUILD/bench/micro_hotpath" --smoke

echo "== micro_hotpath =="
MICRO_JSON=$(mktemp)
"$BUILD/bench/micro_hotpath" \
    --benchmark_out="$MICRO_JSON" --benchmark_out_format=json \
    --benchmark_min_time=0.2

echo "== fig8_speedup (best of $RUNS, user CPU seconds) =="
FIG8_TIMES=()
for _ in $(seq "$RUNS"); do
    t0=$(date +%s%N)
    "$BUILD/bench/fig8_speedup" > /dev/null
    t1=$(date +%s%N)
    FIG8_TIMES+=($(((t1 - t0) / 1000000)))
done
printf 'fig8_speedup wall ms: %s\n' "${FIG8_TIMES[*]}"

python3 - "$MICRO_JSON" "$OUT" "${FIG8_TIMES[@]}" <<'EOF'
import json
import sys

micro_path, out_path, *times = sys.argv[1:]
with open(micro_path) as f:
    micro = json.load(f)

# Never record debug-build timings: micro_hotpath exports the build
# type of this tree (the library's own "library_build_type" context
# field describes the system libbenchmark, not us).
build_type = micro.get("context", {}).get("hmtx_build_type")
if build_type != "Release":
    sys.exit(f"FATAL: micro_hotpath built as {build_type!r}, "
             "expected 'Release'; refusing to write baselines")

# Summarize the indexed vs full-scan ratios at Table 2 geometry
# (benchmark args are /<table2>/<fullscan>).
by_name = {b["name"]: b["real_time"]
           for b in micro.get("benchmarks", [])
           if b.get("run_type", "iteration") == "iteration"}
ratios = {}
for op in ("BM_AbortAll", "BM_VidReset", "BM_EagerCommit"):
    idx = by_name.get(f"{op}/1/0")
    full = by_name.get(f"{op}/1/1")
    if idx and full:
        ratios[op] = round(full / idx, 1)

# Zero-event fast path (DESIGN.md section 13): per-access speedup of
# the hit-dominated stream with the fast path on vs off. ci/check.sh
# gates this at >= 1.20x on every release run.
fp_off = by_name.get("BM_HitFastPath/0")
fp_on = by_name.get("BM_HitFastPath/1")
fastpath = round(fp_off / fp_on, 2) if fp_off and fp_on else None

out = {
    "fig8_wall_ms": [int(t) for t in times],
    "fig8_best_ms": min(int(t) for t in times),
    "table2_index_speedups": ratios,
    "fastpath_hit_speedup": fastpath,
    "micro_hotpath": micro,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=1)
print(f"wrote {out_path}")
print(f"Table 2 indexed-vs-fullscan speedups: {ratios}")
EOF
