/**
 * @file
 * Ablation of speculative load acknowledgments (§5.1): with SLAs,
 * wrong-path loads never mark cache lines and the benchmarks run
 * abort-free; without them (as in all prior systems), every branch
 * misprediction can plant a false speculative marking and trigger
 * spurious aborts — up to a livelock on branch-heavy code.
 */

#include "bench/common.hh"

using namespace hmtx;
using namespace hmtx::bench;

int
main()
{
    std::printf("Ablation §5.1: speculative load acknowledgments\n");
    rule(100);
    std::printf("%-12s | %-12s %-12s | %-12s %-14s | %-12s\n",
                "Benchmark", "SLA cycles", "aborts",
                "noSLA cycles", "false aborts", "slowdown");
    rule(100);

    // The branch-light benchmarks can finish without SLAs (after many
    // recoveries); the branch-heavy ones livelock, which we report.
    for (const char* name :
         {"052.alvinn", "456.hmmer", "ispell", "164.gzip",
          "186.crafty"}) {
        sim::MachineConfig on; // SLA enabled (default)
        applyEngineEnv(on);
        auto wlOn = workloads::makeByName(name);
        runtime::ExecResult rOn = runtime::Runner::runHmtx(*wlOn, on);

        sim::MachineConfig off = on;
        off.slaEnabled = false;
        off.maxRecoveries = 3000;
        auto wlOff = workloads::makeByName(name);
        try {
            runtime::ExecResult rOff =
                runtime::Runner::runHmtx(*wlOff, off);
            std::printf(
                "%-12s | %12llu %12llu | %12llu %14llu | %11.2fx\n",
                name, static_cast<unsigned long long>(rOn.cycles),
                static_cast<unsigned long long>(rOn.stats.aborts),
                static_cast<unsigned long long>(rOff.cycles),
                static_cast<unsigned long long>(
                    rOff.stats.falseAbortsWrongPath),
                static_cast<double>(rOff.cycles) /
                    static_cast<double>(rOn.cycles));
        } catch (const std::exception& e) {
            std::printf("%-12s | %12llu %12llu | %12s %14s | %12s\n",
                        name,
                        static_cast<unsigned long long>(rOn.cycles),
                        static_cast<unsigned long long>(
                            rOn.stats.aborts),
                        "LIVELOCK", ">3000", "inf");
        }
    }
    rule(100);
    std::printf(
        "\nWith SLAs every benchmark runs abort-free (the 'aborts "
        "avoided via SLA' column of\nTable 1 counts how often a "
        "wrong-path marking would have killed a transaction).\n"
        "Without them, spurious misspeculation makes long "
        "transactions on branchy code\nimpractical — \"to our "
        "knowledge, no past work has recognized or solved this "
        "issue\"\n(§5.1).\n");
    return 0;
}
