/**
 * @file
 * Extension bench (§8 future work): "unlimited read and write sets
 * could be supported by overflowing speculatively modified versions
 * of lines into memory and managing them via data structures" [27].
 * Shrinks the cache hierarchy under the two largest-footprint
 * benchmarks: the bounded baseline capacity-aborts into a recovery
 * livelock, while the overflow table completes at a measured cost.
 */

#include "bench/common.hh"

using namespace hmtx;
using namespace hmtx::bench;

int
main()
{
    std::printf("Extension §8: unbounded speculative sets via a "
                "memory-resident overflow table\n");

    for (const char* name : {"130.li", "256.bzip2"}) {
        auto seqWl = workloads::makeByName(name);
        sim::MachineConfig ref;
        applyEngineEnv(ref);
        runtime::ExecResult seq =
            runtime::Runner::runSequential(*seqWl, ref);

        std::printf("\n%s (sequential on Table 2 machine: %llu "
                    "cycles)\n",
                    name, static_cast<unsigned long long>(seq.cycles));
        rule(100);
        std::printf("%-9s | %-22s | %-12s %-8s | %-8s %-8s\n",
                    "L1/L2 KB", "bounded (paper §5.4)",
                    "unbounded cyc", "speedup", "spills", "refills");
        rule(100);
        struct Geometry
        {
            unsigned l1, l2;
        };
        for (Geometry g : {Geometry{64, 32 * 1024}, Geometry{16, 256},
                           Geometry{8, 64}}) {
            sim::MachineConfig bounded;
            applyEngineEnv(bounded);
            bounded.l1SizeKB = g.l1;
            bounded.l2SizeKB = g.l2;
            bounded.maxRecoveries = 400;
            std::string boundedOutcome;
            auto a = workloads::makeByName(name);
            try {
                runtime::ExecResult rb =
                    runtime::Runner::runHmtx(*a, bounded);
                requireChecksum(name, seq, rb);
                boundedOutcome =
                    std::to_string(rb.cycles) + " cyc, " +
                    std::to_string(rb.stats.capacityAborts) +
                    " cap-aborts";
            } catch (const std::exception&) {
                boundedOutcome = "LIVELOCK (capacity aborts)";
            }

            sim::MachineConfig unb = bounded;
            unb.unboundedSpecSets = true;
            auto b = workloads::makeByName(name);
            runtime::ExecResult ru = runtime::Runner::runHmtx(*b, unb);
            requireChecksum(name, seq, ru);

            std::printf("%3u/%-5u | %-22s | %12llu %7.2fx | %8llu "
                        "%8llu\n",
                        g.l1, g.l2, boundedOutcome.c_str(),
                        static_cast<unsigned long long>(ru.cycles),
                        speedup(seq, ru),
                        static_cast<unsigned long long>(
                            ru.stats.specSpills),
                        static_cast<unsigned long long>(
                            ru.stats.specRefills));
        }
        rule(100);
    }
    std::printf(
        "\nWith Table 2's 32 MB L2 nothing spills (the paper's §5.4 "
        "policy suffices); as the\nhierarchy shrinks below the "
        "speculative footprint, the bounded design livelocks on\n"
        "capacity aborts while the overflow table completes, paying "
        "one table walk per spill\nand refill.\n");
    return 0;
}
