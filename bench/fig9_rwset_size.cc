/**
 * @file
 * Regenerates Figure 9: average size of the speculative read and
 * write sets per transaction, in kB, for each benchmark plus the
 * geometric mean of the combined sets.
 */

#include "bench/common.hh"

using namespace hmtx;
using namespace hmtx::bench;

int
main()
{
    sim::MachineConfig cfg;
    applyEngineEnv(cfg);

    std::printf("Figure 9: Average read/write set size per "
                "transaction in kB\n");
    rule(86);
    std::printf("%-12s | %10s %10s %10s | %14s\n", "Benchmark",
                "Read kB", "Write kB", "Combined", "paper combined");
    rule(86);

    std::vector<double> combined;
    for (auto& wl : workloads::makeSuite()) {
        const std::string name = wl->name();
        auto hm = workloads::makeByName(name);
        runtime::ExecResult r = runtime::Runner::runHmtx(*hm, cfg);
        const PaperRef& ref = paperRefs().at(name);
        combined.push_back(r.stats.avgCombinedSetKB());
        std::printf("%-12s | %10.2f %10.2f %10.2f | %12.0f\n",
                    name.c_str(), r.stats.avgReadSetKB(),
                    r.stats.avgWriteSetKB(),
                    r.stats.avgCombinedSetKB(), ref.combinedSetKB);
    }
    rule(86);
    std::printf("%-12s | %10s %10s %10.2f | %12d\n", "Geomean", "",
                "", geomean(combined), 957);
    rule(86);
    std::printf("\nInputs are scaled ~1000x down from native SPEC, "
                "so sets are ~kB instead of the\npaper's ~MB; the "
                "shape holds: 256.bzip2 is the giant, ispell the "
                "smallest, and\nsets of this size rule out "
                "per-access software validation (§2.3) while HMTX\n"
                "handles them in the cache hierarchy with §5.4 "
                "overflow for the pristine versions.\n");
    return 0;
}
