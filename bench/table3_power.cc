/**
 * @file
 * Regenerates Table 3: area, leakage, runtime dynamic power and
 * energy on the simulated 4-core machine, for commodity hardware vs.
 * hardware with the HMTX extensions, each running sequential,
 * SMTX-minimal and (where applicable) HMTX-maximal versions.
 */

#include "bench/common.hh"
#include "power/model.hh"

using namespace hmtx;
using namespace hmtx::bench;

namespace
{

struct Run
{
    runtime::ExecResult res;
    std::uint64_t comparisons = 0;
    std::uint64_t cascaded = 0;
};

double
geoEnergy(const power::PowerModel& pm, const std::vector<Run>& runs)
{
    std::vector<double> e;
    for (const Run& r : runs) {
        power::PowerResult p =
            pm.evaluate(r.res.stats, r.res.instructions,
                        r.comparisons, r.cascaded, r.res.cycles);
        e.push_back(p.energyJ);
    }
    return geomean(e);
}

double
geoDynamic(const power::PowerModel& pm, const std::vector<Run>& runs)
{
    std::vector<double> d;
    for (const Run& r : runs) {
        power::PowerResult p =
            pm.evaluate(r.res.stats, r.res.instructions,
                        r.comparisons, r.cascaded, r.res.cycles);
        d.push_back(p.dynamicW);
    }
    return geomean(d);
}

} // namespace

int
main()
{
    sim::MachineConfig cfg;
    applyEngineEnv(cfg);

    // Gather runs per execution model. Energy uses simulated time
    // scaled to seconds at 2 GHz; our runs are ~10^6 cycles (vs the
    // paper's ~10^9), so energies are in the uJ-mJ range — the
    // *relative* rows are the reproduction target.
    std::vector<Run> seqAll, seqComp, smtxMin, hmtxAll, hmtxComp;
    for (auto& wl : workloads::makeSuite()) {
        const std::string name = wl->name();
        bool comp = workloads::hasSmtxComparison(name);

        auto s = workloads::makeByName(name);
        Run rs{runtime::Runner::runSequential(*s, cfg), 0, 0};
        seqAll.push_back(rs);
        if (comp)
            seqComp.push_back(rs);

        if (comp) {
            auto m = workloads::makeByName(name);
            Run rm{smtx::SmtxRunner::run(*m, cfg,
                                         smtx::RwSetMode::Minimal),
                   0, 0};
            smtxMin.push_back(rm);
        }

        auto h = workloads::makeByName(name);
        Run rh{runtime::Runner::runHmtx(*h, cfg), 0, 0};
        // Comparator activity approximation: every speculative access
        // performs one or two tag-VID comparisons (§4.5); the fast
        // path covers nearly all of them.
        rh.comparisons = 2 * (rh.res.stats.specLoads +
                              rh.res.stats.specStores);
        rh.cascaded = rh.comparisons / 500;
        hmtxAll.push_back(rh);
        if (comp)
            hmtxComp.push_back(rh);
    }

    power::PowerModel commodity(cfg, false);
    power::PowerModel extended(cfg, true);

    std::printf("Table 3: Area, power, and energy on a simulated "
                "4-core machine\n");
    rule(96);
    std::printf("%-11s %-22s | %-10s %-11s | %-12s | %-12s\n",
                "Hardware", "Exec Model", "Area mm^2",
                "Leakage W", "Dynamic W*", "Energy J*");
    rule(96);

    auto row = [&](const power::PowerModel& pm, const char* hw,
                   const char* model, const std::vector<Run>& runs) {
        std::printf("%-11s %-22s | %10.1f %11.3f | %12.3f | %12.3e\n",
                    hw, model, pm.area().totalMm2(), pm.leakageW(),
                    geoDynamic(pm, runs), geoEnergy(pm, runs));
    };

    row(commodity, "Commodity", "Sequential (All)", seqAll);
    row(commodity, "", "Sequential (Comp.)", seqComp);
    row(commodity, "", "SMTX, Min R/W", smtxMin);
    rule(96);
    row(extended, "+HMTX ext.", "Sequential (All)", seqAll);
    row(extended, "", "Sequential (Comp.)", seqComp);
    row(extended, "", "SMTX, Min R/W", smtxMin);
    row(extended, "", "HMTX, Max R/W (All)", hmtxAll);
    row(extended, "", "HMTX, Max R/W (Comp.)", hmtxComp);
    rule(96);
    std::printf(
        "\n* geometric means over the benchmarks of the row's set; "
        "our runs are ~1000x\n  shorter than the paper's, so "
        "absolute energies are smaller by that factor.\n"
        "Paper anchors: 107.1 -> 111.1 mm^2 (+4.0), leakage 5.515 -> "
        "5.607 W, HMTX dynamic\npower slightly above SMTX's while "
        "total energy drops thanks to shorter runtime.\n");
    return 0;
}
