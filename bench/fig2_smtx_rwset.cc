/**
 * @file
 * Regenerates Figure 2: SMTX whole-program speedup over sequential
 * execution with a minimal read/write set (expert manual
 * transformation) vs. a substantial one (speculation validation on
 * the shared-data accesses). More validation turns slight speedups
 * into substantial slowdowns — the motivation for hardware MTX
 * support.
 */

#include "bench/common.hh"

using namespace hmtx;
using namespace hmtx::bench;

int
main()
{
    sim::MachineConfig cfg;
    applyEngineEnv(cfg);

    std::printf("Figure 2: SMTX whole-program speedup over "
                "sequential (4 cores)\n");
    std::printf("(hot-loop speedups folded through Amdahl's law with "
                "Table 1 hot-loop fractions)\n");
    rule();
    std::printf("%-12s | %-10s | %-12s | %-14s\n", "Benchmark",
                "hot loop%", "min R/W set", "substantial R/W");
    rule();

    std::vector<double> minS, maxS;
    for (auto& wl : workloads::makeSuite()) {
        const std::string name = wl->name();
        if (!workloads::hasSmtxComparison(name))
            continue;
        auto seqWl = workloads::makeByName(name);
        auto minWl = workloads::makeByName(name);
        auto maxWl = workloads::makeByName(name);

        runtime::ExecResult seq =
            runtime::Runner::runSequential(*seqWl, cfg);
        runtime::ExecResult rmin = smtx::SmtxRunner::run(
            *minWl, cfg, smtx::RwSetMode::Minimal);
        runtime::ExecResult rmax = smtx::SmtxRunner::run(
            *maxWl, cfg, smtx::RwSetMode::Maximal);
        requireChecksum(name, seq, rmin);
        requireChecksum(name, seq, rmax);

        double f = wl->hotLoopFraction();
        double wMin = wholeProgramSpeedup(f, speedup(seq, rmin));
        double wMax = wholeProgramSpeedup(f, speedup(seq, rmax));
        minS.push_back(wMin);
        maxS.push_back(wMax);
        std::printf("%-12s | %9.1f%% | %11.2fx | %13.2fx\n",
                    name.c_str(), f * 100, wMin, wMax);
    }
    rule();
    std::printf("%-12s | %10s | %11.2fx | %13.2fx\n", "Geomean", "",
                geomean(minS), geomean(maxS));
    rule();
    std::printf("\nPaper shape: minimal sets give modest speedups; "
                "adding validation to shared-data\naccesses turns "
                "them into substantial slowdowns (\"more speculation "
                "validation turns\nslight speedups into substantial "
                "slowdowns\", §2.3).\n");
    return 0;
}
