/**
 * @file
 * Extension bench (§8 future work): "adapt the HMTX coherence scheme
 * to a directory-based protocol to allow for efficient scaling to
 * many more cores." Sweeps PS-DSWP core counts on the snoopy bus vs.
 * the directory fabric: the bus serializes all coherence traffic and
 * flattens out; address-interleaved directory banks keep scaling.
 */

#include "bench/common.hh"

using namespace hmtx;
using namespace hmtx::bench;

int
main()
{
    std::printf("Extension §8: PS-DSWP scaling, snoopy bus vs "
                "directory fabric\n");

    for (const char* name : {"456.hmmer", "197.parser"}) {
        auto seqWl = workloads::makeByName(name);
        sim::MachineConfig base;
        runtime::ExecResult seq =
            runtime::Runner::runSequential(*seqWl, base);

        std::printf("\n%s (sequential: %llu cycles)\n", name,
                    static_cast<unsigned long long>(seq.cycles));
        rule(88);
        std::printf("%-7s | %-12s %-9s | %-12s %-9s | %-12s\n",
                    "cores", "snoop cyc", "speedup", "dir cyc",
                    "speedup", "dir lookups");
        rule(88);
        for (unsigned cores : {2u, 4u, 8u, 16u}) {
            sim::MachineConfig snoop;
            snoop.numCores = cores;
            auto a = workloads::makeByName(name);
            runtime::ExecResult rs = runtime::Runner::runHmtx(*a, snoop);
            requireChecksum(name, seq, rs);

            sim::MachineConfig dir = snoop;
            dir.fabric = sim::Fabric::Directory;
            dir.dirBanks = 16;
            auto b = workloads::makeByName(name);
            runtime::ExecResult rd = runtime::Runner::runHmtx(*b, dir);
            requireChecksum(name, seq, rd);

            std::printf(
                "%-7u | %12llu %8.2fx | %12llu %8.2fx | %12llu\n",
                cores, static_cast<unsigned long long>(rs.cycles),
                speedup(seq, rs),
                static_cast<unsigned long long>(rd.cycles),
                speedup(seq, rd),
                static_cast<unsigned long long>(
                    rd.stats.dirLookups));
        }
        rule(88);
    }
    std::printf(
        "\nThe HMTX version rules are fabric-independent; only the "
        "transport changes. The\nsnoopy bus (4-cycle occupancy per "
        "transaction) saturates as cores multiply, while\ndirectory "
        "banks let transactions to independent lines proceed "
        "concurrently.\n");
    return 0;
}
