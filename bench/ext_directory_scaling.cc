/**
 * @file
 * Extension bench (§8 future work): "adapt the HMTX coherence scheme
 * to a directory-based protocol to allow for efficient scaling to
 * many more cores." Sweeps PS-DSWP core counts across both
 * Interconnect implementations: the snoopy bus serializes all
 * coherence traffic (occupancy grows with the core count) and
 * flattens out; address-interleaved directory banks keep scaling.
 *
 * Besides the console table, emits a machine-readable summary to
 * BENCH_scaling.json (path overridable as argv[1]) for the bench
 * harness.
 */

#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/common.hh"

using namespace hmtx;
using namespace hmtx::bench;

namespace
{

/** One cell of the cores x fabric sweep. */
struct Sample
{
    unsigned cores;
    const char* fabric;
    runtime::ExecResult r;
    double speedup;
};

/** One cell of the host-throughput shard sweep. */
struct ShardSample
{
    unsigned cores;
    unsigned shards;
    double wallMs;
    runtime::ExecResult r;
};

/** Best-of-3 host wall clock around one HMTX run. */
ShardSample
timeShardRun(const char* name, unsigned cores, unsigned shards)
{
    ShardSample s{cores, shards, 0.0, {}};
    for (int rep = 0; rep < 3; ++rep) {
        sim::MachineConfig cfg;
        cfg.numCores = cores;
        cfg.fabric = sim::Fabric::Directory;
        cfg.dirBanks = 16;
        cfg.dirLookup = 10;
        cfg.dirHop = 10;
        // Naive SS 4.4 commit processing: every commit/abort walks the
        // speculative lines, which is exactly the bulk work the
        // sharded engine parallelizes.
        cfg.txMode = TxMode::EagerHmtx;
        cfg.shards = shards;
        applyEngineEnv(cfg);
        auto wl = workloads::makeByName(name);
        const auto t0 = std::chrono::steady_clock::now();
        runtime::ExecResult r = runtime::Runner::runHmtx(*wl, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || ms < s.wallMs) {
            s.wallMs = ms;
            s.r = std::move(r);
        }
    }
    return s;
}

/** One cell of the event-engine host-throughput sweep. */
struct EngineSample
{
    unsigned cores;
    sim::SimEngine engine;
    double wallMs;
    runtime::ExecResult r;
};

/** Best-of-3 host wall clock around one HMTX run under @p engine.
 *  The per-access hot path dominates here, so the directory fabric
 *  at many simulated cores is where staged execution has breadth. */
EngineSample
timeEngineRun(const char* name, unsigned cores, sim::SimEngine engine)
{
    EngineSample s{cores, engine, 0.0, {}};
    for (int rep = 0; rep < 3; ++rep) {
        sim::MachineConfig cfg;
        cfg.numCores = cores;
        cfg.fabric = sim::Fabric::Directory;
        cfg.dirBanks = 16;
        cfg.dirLookup = 10;
        cfg.dirHop = 10;
        cfg.engine = engine;
        cfg.engineThreads = 0; // auto: clamp to host CPUs
        auto wl = workloads::makeByName(name);
        const auto t0 = std::chrono::steady_clock::now();
        runtime::ExecResult r = runtime::Runner::runHmtx(*wl, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || ms < s.wallMs) {
            s.wallMs = ms;
            s.r = std::move(r);
        }
    }
    return s;
}

/** One cell of the commute-apply / fast-path sweep. */
struct ApplySample
{
    unsigned cores;
    bool commute;
    bool fastPath;
    double wallMs;
    runtime::ExecResult r;
};

/** Best-of-3 host wall clock of a parallel-engine run with the
 *  commute-aware apply and the zero-event fast path (DESIGN.md §13)
 *  toggled. Config otherwise identical to timeEngineRun so simulated
 *  cycles must match the engine sweep bit for bit. */
ApplySample
timeApplyRun(const char* name, unsigned cores, bool commute,
             bool fastPath)
{
    ApplySample s{cores, commute, fastPath, 0.0, {}};
    for (int rep = 0; rep < 3; ++rep) {
        sim::MachineConfig cfg;
        cfg.numCores = cores;
        cfg.fabric = sim::Fabric::Directory;
        cfg.dirBanks = 16;
        cfg.dirLookup = 10;
        cfg.dirHop = 10;
        cfg.engine = sim::SimEngine::Parallel;
        cfg.engineThreads = 0; // auto: clamp to host CPUs
        cfg.applyCommute = commute;
        cfg.fastPath = fastPath;
        auto wl = workloads::makeByName(name);
        const auto t0 = std::chrono::steady_clock::now();
        runtime::ExecResult r = runtime::Runner::runHmtx(*wl, cfg);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || ms < s.wallMs) {
            s.wallMs = ms;
            s.r = std::move(r);
        }
    }
    return s;
}

} // namespace

int
main(int argc, char** argv)
{
    const char* outPath = argc > 1 ? argv[1] : "BENCH_scaling.json";
    sim::MachineConfig envProbe;
    const char* envEngine = applyEngineEnv(envProbe);
    std::printf("Extension §8: PS-DSWP scaling, snoopy bus vs "
                "directory fabric (engine: %s)\n",
                envEngine);

    const std::vector<const char*> benches{"456.hmmer", "197.parser"};
    const std::vector<unsigned> coreCounts{2, 4, 8, 16, 32};

    std::FILE* js = std::fopen(outPath, "w");
    if (!js) {
        std::fprintf(stderr, "FATAL: cannot open %s\n", outPath);
        return 1;
    }
    // Echo the commit-mode axis so every BENCH report is
    // self-describing even though this sweep runs the lazy default.
    std::fprintf(js,
                 "{\n \"engine\": \"%s\",\n"
                 " \"config\": {\"txMode\": \"%s\", "
                 "\"btxMaxRetries\": %u, \"btxAbortThreshold\": %u, "
                 "\"limitedSetK\": %u},\n \"workloads\": {\n",
                 envEngine, txModeName(envProbe.txMode),
                 envProbe.btxMaxRetries, envProbe.btxAbortThreshold,
                 envProbe.limitedSetK);

    bool dirWinsAtScale = true;
    for (std::size_t w = 0; w < benches.size(); ++w) {
        const char* name = benches[w];
        auto seqWl = workloads::makeByName(name);
        sim::MachineConfig base;
        applyEngineEnv(base);
        runtime::ExecResult seq =
            runtime::Runner::runSequential(*seqWl, base);

        std::printf("\n%s (sequential: %llu cycles)\n", name,
                    static_cast<unsigned long long>(seq.cycles));
        rule(88);
        std::printf("%-7s | %-12s %-9s | %-12s %-9s | %-12s\n",
                    "cores", "snoop cyc", "speedup", "dir cyc",
                    "speedup", "dir lookups");
        rule(88);

        std::vector<Sample> samples;
        for (unsigned cores : coreCounts) {
            sim::MachineConfig snoop;
            snoop.numCores = cores;
            applyEngineEnv(snoop);
            auto a = workloads::makeByName(name);
            runtime::ExecResult rs = runtime::Runner::runHmtx(*a, snoop);
            requireChecksum(name, seq, rs);
            samples.push_back(
                {cores, "snoop-bus", rs, speedup(seq, rs)});

            sim::MachineConfig dir = snoop;
            dir.fabric = sim::Fabric::Directory;
            dir.dirBanks = 16;
            // Model a small-CMP mesh (8-32 tiles, a hop is a few
            // router traversals) rather than the config.hh defaults
            // sized for a large NoC; the crossover vs the bus then
            // lands at 8 cores instead of 16.
            dir.dirLookup = 10;
            dir.dirHop = 10;
            auto b = workloads::makeByName(name);
            runtime::ExecResult rd = runtime::Runner::runHmtx(*b, dir);
            requireChecksum(name, seq, rd);
            samples.push_back(
                {cores, "directory", rd, speedup(seq, rd)});

            if (cores >= 8 && rd.cycles > rs.cycles)
                dirWinsAtScale = false;

            std::printf(
                "%-7u | %12llu %8.2fx | %12llu %8.2fx | %12llu\n",
                cores, static_cast<unsigned long long>(rs.cycles),
                speedup(seq, rs),
                static_cast<unsigned long long>(rd.cycles),
                speedup(seq, rd),
                static_cast<unsigned long long>(rd.stats.dirLookups));
        }
        rule(88);

        std::fprintf(js,
                     "  \"%s\": {\n   \"sequential_cycles\": %llu,\n"
                     "   \"sweep\": [\n",
                     name,
                     static_cast<unsigned long long>(seq.cycles));
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const Sample& s = samples[i];
            std::fprintf(
                js,
                "    {\"cores\": %u, \"fabric\": \"%s\", "
                "\"cycles\": %llu, \"speedup\": %.4f, "
                "\"busTxns\": %llu, \"dirLookups\": %llu, "
                "\"idleCores\": %llu}%s\n",
                s.cores, s.fabric,
                static_cast<unsigned long long>(s.r.cycles), s.speedup,
                static_cast<unsigned long long>(s.r.stats.busTxns),
                static_cast<unsigned long long>(s.r.stats.dirLookups),
                static_cast<unsigned long long>(s.r.stats.idleCores),
                i + 1 < samples.size() ? "," : "");
        }
        std::fprintf(js, "   ]\n  }%s\n",
                     w + 1 < benches.size() ? "," : "");
    }

    // --- sharded-engine host-throughput sweep --------------------------
    // Simulated results are bit-identical at any shard count (the
    // differential tests enforce that); this sweep measures the *host*
    // wall clock of the banked walk engine at the many-core configs
    // where bulk commit/abort walks dominate. shards=1 runs the
    // sequential engine; shards=hostShards runs one worker thread per
    // bank. On a single-CPU host the threads time-slice, so the ratio
    // is reported but only gated when the host can actually run them
    // in parallel.
    const unsigned hostCpus =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned hostShards = std::max(2u, hostCpus);
    const char* shardBench = "456.hmmer";
    std::printf("\nsharded engine, %s, directory fabric, eager commit "
                "(host CPUs: %u)\n",
                shardBench, hostCpus);
    rule(88);
    std::printf("%-7s | %-7s %-6s %-9s | %-10s %-9s\n", "cores",
                "shards", "banks", "threaded", "wall ms", "speedup");
    rule(88);

    auto shardSeqWl = workloads::makeByName(shardBench);
    sim::MachineConfig shardSeqCfg;
    applyEngineEnv(shardSeqCfg);
    runtime::ExecResult shardSeq =
        runtime::Runner::runSequential(*shardSeqWl, shardSeqCfg);

    bool shardSpeedupMet = true;
    std::vector<ShardSample> shardSamples;
    for (unsigned cores : {16u, 32u}) {
        ShardSample base = timeShardRun(shardBench, cores, 1);
        requireChecksum(shardBench, shardSeq, base.r);
        ShardSample wide = timeShardRun(shardBench, cores, hostShards);
        requireChecksum(shardBench, shardSeq, wide.r);
        if (base.r.cycles != wide.r.cycles) {
            std::fprintf(stderr,
                         "FATAL: shard count changed simulated time\n");
            return 1;
        }
        for (const ShardSample* s : {&base, &wide}) {
            std::printf("%-7u | %-7u %-6llu %-9s | %9.2f %8.2fx\n",
                        s->cores, s->shards,
                        static_cast<unsigned long long>(
                            s->r.shardStats.banks),
                        s->r.shardStats.threaded ? "yes" : "no",
                        s->wallMs, base.wallMs / s->wallMs);
        }
        if (hostCpus > 1 && wide.wallMs * 1.5 > base.wallMs)
            shardSpeedupMet = false;
        shardSamples.push_back(std::move(base));
        shardSamples.push_back(std::move(wide));
    }
    rule(88);

    // --- parallel-engine host-throughput sweep -------------------------
    // Same bit-identity guarantee as the shard sweep (ParallelDifferential
    // and the fuzzer's engine cells enforce it); this measures the host
    // wall clock of staged per-access execution (DESIGN.md §11) at the
    // many-core configs where each tick carries events from many lanes.
    // On a single-CPU host auto mode stays inline, so the ratio is
    // reported but the >1x gate is only armed when host_cpus > 1.
    std::printf("\nparallel event engine, %s, directory fabric "
                "(host CPUs: %u)\n",
                shardBench, hostCpus);
    rule(88);
    std::printf("%-7s | %-10s %-8s %-9s | %-10s %-9s\n", "cores",
                "engine", "workers", "threaded", "wall ms", "speedup");
    rule(88);

    bool parallelSpeedupMet = true;
    std::vector<EngineSample> engineSamples;
    for (unsigned cores : {16u, 32u}) {
        EngineSample base =
            timeEngineRun(shardBench, cores, sim::SimEngine::Sequential);
        requireChecksum(shardBench, shardSeq, base.r);
        EngineSample par =
            timeEngineRun(shardBench, cores, sim::SimEngine::Parallel);
        requireChecksum(shardBench, shardSeq, par.r);
        if (base.r.cycles != par.r.cycles) {
            std::fprintf(stderr,
                         "FATAL: engine choice changed simulated "
                         "time (%llu vs %llu cycles)\n",
                         static_cast<unsigned long long>(base.r.cycles),
                         static_cast<unsigned long long>(par.r.cycles));
            return 1;
        }
        for (const EngineSample* s : {&base, &par}) {
            std::printf(
                "%-7u | %-10s %-8llu %-9s | %9.2f %8.2fx\n", s->cores,
                s->engine == sim::SimEngine::Parallel ? "parallel"
                                                      : "sequential",
                static_cast<unsigned long long>(s->r.parStats.workers),
                s->r.parStats.threaded ? "yes" : "no", s->wallMs,
                base.wallMs / s->wallMs);
        }
        if (hostCpus > 1 && par.wallMs >= base.wallMs)
            parallelSpeedupMet = false;
        engineSamples.push_back(std::move(base));
        engineSamples.push_back(std::move(par));
    }
    rule(88);

    // --- commute-apply / fast-path sweep -------------------------------
    // Three parallel-engine cells per core count: serial apply,
    // commute-aware apply, and commute-aware apply with the zero-event
    // fast path. Simulated cycles must equal the engine sweep's
    // sequential base bit for bit (DESIGN.md §13) — the knobs may only
    // move host time and the sim.parallel.apply.* / sim.fastpath.*
    // diagnostics. As above, the wall-clock gate is only armed when
    // the host can actually run workers in parallel.
    std::printf("\ncommute-aware apply + fast path, %s, parallel "
                "engine (host CPUs: %u)\n",
                shardBench, hostCpus);
    rule(88);
    std::printf("%-7s | %-8s %-9s | %-10s %-9s | %-12s %-10s\n",
                "cores", "apply", "fastpath", "wall ms", "speedup",
                "batches", "fast hits");
    rule(88);

    bool applySpeedupMet = true;
    std::vector<ApplySample> applySamples;
    for (std::size_t ci = 0; ci < 2; ++ci) {
        const unsigned cores = ci == 0 ? 16u : 32u;
        ApplySample serial =
            timeApplyRun(shardBench, cores, false, false);
        ApplySample commute =
            timeApplyRun(shardBench, cores, true, false);
        ApplySample fast = timeApplyRun(shardBench, cores, true, true);
        const runtime::ExecResult& engBase = engineSamples[2 * ci].r;
        for (const ApplySample* s : {&serial, &commute, &fast}) {
            requireChecksum(shardBench, shardSeq, s->r);
            if (s->r.cycles != engBase.cycles) {
                std::fprintf(stderr,
                             "FATAL: apply/fast-path knobs changed "
                             "simulated time (%llu vs %llu cycles)\n",
                             static_cast<unsigned long long>(
                                 s->r.cycles),
                             static_cast<unsigned long long>(
                                 engBase.cycles));
                return 1;
            }
            std::printf(
                "%-7u | %-8s %-9s | %9.2f %8.2fx | %12llu %10llu\n",
                s->cores, s->commute ? "commute" : "serial",
                s->fastPath ? "on" : "off", s->wallMs,
                serial.wallMs / s->wallMs,
                static_cast<unsigned long long>(
                    s->r.parStats.commuteBatches),
                static_cast<unsigned long long>(
                    s->r.fastStats.hits()));
        }
        if (hostCpus > 1 && commute.wallMs >= serial.wallMs)
            applySpeedupMet = false;
        applySamples.push_back(std::move(serial));
        applySamples.push_back(std::move(commute));
        applySamples.push_back(std::move(fast));
    }
    rule(88);

    std::fprintf(js, " },\n \"host_cpus\": %u,\n \"shard_sweep\": [\n",
                 hostCpus);
    for (std::size_t i = 0; i < shardSamples.size(); ++i) {
        const ShardSample& s = shardSamples[i];
        const ShardSample& base = shardSamples[i & ~std::size_t{1}];
        std::fprintf(
            js,
            "  {\"workload\": \"%s\", \"cores\": %u, \"shards\": %u, "
            "\"banks\": %llu, \"threaded\": %s, \"wall_ms\": %.3f, "
            "\"speedup_vs_1shard\": %.4f, \"epochs\": %llu, "
            "\"bank_cmds\": %llu, \"ring_high_water\": %llu, "
            "\"push_stalls\": %llu, \"barrier_stalls\": %llu}%s\n",
            shardBench, s.cores, s.shards,
            static_cast<unsigned long long>(s.r.shardStats.banks),
            s.r.shardStats.threaded ? "true" : "false", s.wallMs,
            base.wallMs / s.wallMs,
            static_cast<unsigned long long>(s.r.shardStats.epochs),
            static_cast<unsigned long long>(s.r.shardStats.totalCmds()),
            static_cast<unsigned long long>(
                s.r.shardStats.ringHighWater),
            static_cast<unsigned long long>(s.r.shardStats.pushStalls),
            static_cast<unsigned long long>(
                s.r.shardStats.barrierStalls),
            i + 1 < shardSamples.size() ? "," : "");
    }
    std::fprintf(js, " ],\n \"engine_sweep\": [\n");
    for (std::size_t i = 0; i < engineSamples.size(); ++i) {
        const EngineSample& s = engineSamples[i];
        const EngineSample& base = engineSamples[i & ~std::size_t{1}];
        std::fprintf(
            js,
            "  {\"workload\": \"%s\", \"cores\": %u, "
            "\"engine\": \"%s\", \"workers\": %llu, \"threaded\": %s, "
            "\"wall_ms\": %.3f, \"speedup_vs_sequential\": %.4f, "
            "\"windows\": %llu, \"events_per_window\": %.2f, "
            "\"barrier_stalls\": %llu, \"rollbacks\": %llu}%s\n",
            shardBench, s.cores,
            s.engine == sim::SimEngine::Parallel ? "parallel"
                                                 : "sequential",
            static_cast<unsigned long long>(s.r.parStats.workers),
            s.r.parStats.threaded ? "true" : "false", s.wallMs,
            base.wallMs / s.wallMs,
            static_cast<unsigned long long>(s.r.parStats.windows),
            s.r.parStats.eventsPerWindow(),
            static_cast<unsigned long long>(
                s.r.parStats.barrierStalls),
            static_cast<unsigned long long>(s.r.parStats.rollbacks),
            i + 1 < engineSamples.size() ? "," : "");
    }
    std::fprintf(js, " ],\n \"apply_sweep\": [\n");
    for (std::size_t i = 0; i < applySamples.size(); ++i) {
        const ApplySample& s = applySamples[i];
        const ApplySample& base = applySamples[i - i % 3];
        std::fprintf(
            js,
            "  {\"workload\": \"%s\", \"cores\": %u, "
            "\"apply\": \"%s\", \"fastpath\": %s, "
            "\"wall_ms\": %.3f, \"speedup_vs_serial\": %.4f, "
            "\"commute_batches\": %llu, \"commute_applied\": %llu, "
            "\"commute_conflicts\": %llu, "
            "\"commute_serial_fallbacks\": %llu, "
            "\"fast_hits\": %llu, \"fast_hit_rate\": %.4f}%s\n",
            shardBench, s.cores, s.commute ? "commute" : "serial",
            s.fastPath ? "true" : "false", s.wallMs,
            base.wallMs / s.wallMs,
            static_cast<unsigned long long>(
                s.r.parStats.commuteBatches),
            static_cast<unsigned long long>(
                s.r.parStats.commuteApplied),
            static_cast<unsigned long long>(
                s.r.parStats.commuteConflicts),
            static_cast<unsigned long long>(
                s.r.parStats.commuteSerialFallbacks),
            static_cast<unsigned long long>(s.r.fastStats.hits()),
            s.r.fastStats.hitRate(),
            i + 1 < applySamples.size() ? "," : "");
    }
    std::fprintf(js,
                 " ],\n \"shard_speedup_gate_active\": %s,\n"
                 " \"shard_speedup_met\": %s,\n"
                 " \"parallel_speedup_gate_active\": %s,\n"
                 " \"parallel_speedup_met\": %s,\n"
                 " \"apply_speedup_gate_active\": %s,\n"
                 " \"apply_speedup_met\": %s,\n"
                 " \"directory_wins_at_8plus_cores\": %s\n}\n",
                 hostCpus > 1 ? "true" : "false",
                 shardSpeedupMet ? "true" : "false",
                 hostCpus > 1 ? "true" : "false",
                 parallelSpeedupMet ? "true" : "false",
                 hostCpus > 1 ? "true" : "false",
                 applySpeedupMet ? "true" : "false",
                 dirWinsAtScale ? "true" : "false");
    std::fclose(js);
    std::printf("\nwrote %s\n", outPath);
    if (hostCpus == 1)
        std::printf("note: single-CPU host, shard and engine workers "
                    "time-slice; speedup gates inactive\n");

    std::printf(
        "\nThe HMTX version rules are fabric-independent; only the "
        "transport changes. The\nsnoopy bus (occupancy grows with the "
        "core count) saturates as cores multiply,\nwhile directory "
        "banks let transactions to independent lines proceed "
        "concurrently.\n");
    return dirWinsAtScale && shardSpeedupMet && parallelSpeedupMet &&
            applySpeedupMet
        ? 0
        : 2;
}
