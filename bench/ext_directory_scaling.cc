/**
 * @file
 * Extension bench (§8 future work): "adapt the HMTX coherence scheme
 * to a directory-based protocol to allow for efficient scaling to
 * many more cores." Sweeps PS-DSWP core counts across both
 * Interconnect implementations: the snoopy bus serializes all
 * coherence traffic (occupancy grows with the core count) and
 * flattens out; address-interleaved directory banks keep scaling.
 *
 * Besides the console table, emits a machine-readable summary to
 * BENCH_scaling.json (path overridable as argv[1]) for the bench
 * harness.
 */

#include "bench/common.hh"

using namespace hmtx;
using namespace hmtx::bench;

namespace
{

/** One cell of the cores x fabric sweep. */
struct Sample
{
    unsigned cores;
    const char* fabric;
    runtime::ExecResult r;
    double speedup;
};

} // namespace

int
main(int argc, char** argv)
{
    const char* outPath = argc > 1 ? argv[1] : "BENCH_scaling.json";
    std::printf("Extension §8: PS-DSWP scaling, snoopy bus vs "
                "directory fabric\n");

    const std::vector<const char*> benches{"456.hmmer", "197.parser"};
    const std::vector<unsigned> coreCounts{2, 4, 8, 16, 32};

    std::FILE* js = std::fopen(outPath, "w");
    if (!js) {
        std::fprintf(stderr, "FATAL: cannot open %s\n", outPath);
        return 1;
    }
    std::fprintf(js, "{\n \"workloads\": {\n");

    bool dirWinsAtScale = true;
    for (std::size_t w = 0; w < benches.size(); ++w) {
        const char* name = benches[w];
        auto seqWl = workloads::makeByName(name);
        sim::MachineConfig base;
        runtime::ExecResult seq =
            runtime::Runner::runSequential(*seqWl, base);

        std::printf("\n%s (sequential: %llu cycles)\n", name,
                    static_cast<unsigned long long>(seq.cycles));
        rule(88);
        std::printf("%-7s | %-12s %-9s | %-12s %-9s | %-12s\n",
                    "cores", "snoop cyc", "speedup", "dir cyc",
                    "speedup", "dir lookups");
        rule(88);

        std::vector<Sample> samples;
        for (unsigned cores : coreCounts) {
            sim::MachineConfig snoop;
            snoop.numCores = cores;
            auto a = workloads::makeByName(name);
            runtime::ExecResult rs = runtime::Runner::runHmtx(*a, snoop);
            requireChecksum(name, seq, rs);
            samples.push_back(
                {cores, "snoop-bus", rs, speedup(seq, rs)});

            sim::MachineConfig dir = snoop;
            dir.fabric = sim::Fabric::Directory;
            dir.dirBanks = 16;
            // Model a small-CMP mesh (8-32 tiles, a hop is a few
            // router traversals) rather than the config.hh defaults
            // sized for a large NoC; the crossover vs the bus then
            // lands at 8 cores instead of 16.
            dir.dirLookup = 10;
            dir.dirHop = 10;
            auto b = workloads::makeByName(name);
            runtime::ExecResult rd = runtime::Runner::runHmtx(*b, dir);
            requireChecksum(name, seq, rd);
            samples.push_back(
                {cores, "directory", rd, speedup(seq, rd)});

            if (cores >= 8 && rd.cycles > rs.cycles)
                dirWinsAtScale = false;

            std::printf(
                "%-7u | %12llu %8.2fx | %12llu %8.2fx | %12llu\n",
                cores, static_cast<unsigned long long>(rs.cycles),
                speedup(seq, rs),
                static_cast<unsigned long long>(rd.cycles),
                speedup(seq, rd),
                static_cast<unsigned long long>(rd.stats.dirLookups));
        }
        rule(88);

        std::fprintf(js,
                     "  \"%s\": {\n   \"sequential_cycles\": %llu,\n"
                     "   \"sweep\": [\n",
                     name,
                     static_cast<unsigned long long>(seq.cycles));
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const Sample& s = samples[i];
            std::fprintf(
                js,
                "    {\"cores\": %u, \"fabric\": \"%s\", "
                "\"cycles\": %llu, \"speedup\": %.4f, "
                "\"busTxns\": %llu, \"dirLookups\": %llu, "
                "\"idleCores\": %llu}%s\n",
                s.cores, s.fabric,
                static_cast<unsigned long long>(s.r.cycles), s.speedup,
                static_cast<unsigned long long>(s.r.stats.busTxns),
                static_cast<unsigned long long>(s.r.stats.dirLookups),
                static_cast<unsigned long long>(s.r.stats.idleCores),
                i + 1 < samples.size() ? "," : "");
        }
        std::fprintf(js, "   ]\n  }%s\n",
                     w + 1 < benches.size() ? "," : "");
    }

    std::fprintf(js, " },\n \"directory_wins_at_8plus_cores\": %s\n}\n",
                 dirWinsAtScale ? "true" : "false");
    std::fclose(js);
    std::printf("\nwrote %s\n", outPath);

    std::printf(
        "\nThe HMTX version rules are fabric-independent; only the "
        "transport changes. The\nsnoopy bus (occupancy grows with the "
        "core count) saturates as cores multiply,\nwhile directory "
        "banks let transactions to independent lines proceed "
        "concurrently.\n");
    return dirWinsAtScale ? 0 : 2;
}
