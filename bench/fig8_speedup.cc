/**
 * @file
 * Regenerates Figure 8: hot-loop speedup over sequential execution on
 * 4 cores, for SMTX with expert-minimal read/write sets vs. HMTX with
 * the maximal possible read/write sets (every load and store inside
 * each transaction validated). 186.crafty and ispell have no SMTX
 * comparison (§6.1).
 */

#include "bench/common.hh"

using namespace hmtx;
using namespace hmtx::bench;

int
main()
{
    sim::MachineConfig cfg; // Table 2 defaults, 4 cores
    // HMTX_ENGINE=parallel reruns the whole figure on the parallel
    // event engine; every number must come out identical (the figure
    // reports simulated cycles, and the engines are bit-identical).
    const char* engine = applyEngineEnv(cfg);

    std::printf("Figure 8: Hot loop speedup over sequential, "
                "4 cores (engine: %s)\n",
                engine);
    std::printf("(paper bar heights shown for shape comparison)\n");
    rule();
    std::printf("%-12s | %-9s %-9s | %-9s %-9s\n", "Benchmark",
                "SMTX min", "(paper)", "HMTX max", "(paper)");
    rule();

    std::vector<double> hmtxAll, hmtxComp, smtxComp;
    for (auto& wl : workloads::makeSuite()) {
        const std::string name = wl->name();
        auto seqWl = workloads::makeByName(name);
        auto smtxWl = workloads::makeByName(name);
        auto hmtxWl = workloads::makeByName(name);

        runtime::ExecResult seq =
            runtime::Runner::runSequential(*seqWl, cfg);
        runtime::ExecResult hm = runtime::Runner::runHmtx(*hmtxWl, cfg);
        requireChecksum(name, seq, hm);
        double sh = speedup(seq, hm);
        hmtxAll.push_back(sh);

        const PaperRef& ref = paperRefs().at(name);
        if (workloads::hasSmtxComparison(name)) {
            runtime::ExecResult sm = smtx::SmtxRunner::run(
                *smtxWl, cfg, smtx::RwSetMode::Minimal);
            requireChecksum(name, seq, sm);
            double ss = speedup(seq, sm);
            smtxComp.push_back(ss);
            hmtxComp.push_back(sh);
            std::printf("%-12s | %8.2fx %8.2fx | %8.2fx %8.2fx\n",
                        name.c_str(), ss, ref.smtxSpeedup, sh,
                        ref.hmtxSpeedup);
        } else {
            std::printf("%-12s | %8s %9s | %8.2fx %8.2fx\n",
                        name.c_str(), "-", "-", sh,
                        ref.hmtxSpeedup);
        }
    }
    rule();
    std::printf("%-12s | %8.2fx %8.2fx | %8.2fx %8.2fx\n",
                "Geo (Comp.)", geomean(smtxComp), 1.44,
                geomean(hmtxComp), 2.02);
    std::printf("%-12s | %8s %9s | %8.2fx %8.2fx\n", "Geo (All)",
                "-", "-", geomean(hmtxAll), 1.99);
    rule();
    std::printf("\nPaper headline: HMTX geomean 1.99x over sequential "
                "on all 8 benchmarks (99%% speedup),\noutperforming "
                "SMTX (1.44x) despite maximal validation; SMTX also "
                "burns one core\non its commit process.\n");
    return 0;
}
