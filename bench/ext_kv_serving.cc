/**
 * @file
 * Millions-of-MTX serving sweep: the KV/OLTP engine of
 * src/workloads/kv_serve.hh across the full commit-mode matrix
 * {lazy-hmtx, eager-hmtx, best-effort, limited-set} x {snoop-bus,
 * directory} x Zipf skew {0, 0.9, 1.2} x write ratio {0.1, 0.5} —
 * 48 cells x 25k requests = 1.2M transactions per run, each cell
 * reporting simulated throughput and exact streaming p50/p99/p999.
 *
 * The headline is the p999-vs-skew curve of best-effort against lazy
 * HMTX. The divergence is capacity-driven: every strided scan
 * overflows the small hierarchy, which unbounded HMTX absorbs by
 * spilling to the overflow table while best-effort capacity-aborts
 * its retry budget away and collapses onto the serialized fallback
 * lock — whole bodies re-execute under global lane syncs, and the
 * tail inflates at *every* skew. The gap is widest at low skew and
 * narrows as the Zipfian head heats up, because conflict aborts start
 * costing the unbounded machine replays too (its flush-and-replay is
 * global) while serialization already bounds best-effort's conflict
 * exposure. The limited-set machine instead pre-detects over-K scans
 * and runs them non-speculatively in commit order, trading throughput
 * for a flatter tail. The run exits 2 if no cell shows best-effort
 * degrading p999 by >= 1.2x against lazy HMTX at the same skew/mix.
 *
 * A profile section measures the streaming-histogram discipline
 * against the naive record-every-latency mode on the same cell and
 * embeds the registry-split before/after microbenchmark numbers
 * (bench/micro_hotpath.cc BM_VidResetDirtyBg) that make 1M+ requests
 * per run practical; ci/check.sh gates the streaming throughput
 * against the committed baseline via --gate.
 *
 * Usage: ext_kv_serving [out.json]      full sweep -> JSON report
 *        ext_kv_serving --gate          gate cell only, prints
 *                                       "gate_requests_per_sec <x>"
 *
 * Environment: HMTX_SERVE_THETA / HMTX_SERVE_WRITE_RATIO collapse the
 * corresponding axis, HMTX_SERVE_OPS overrides requests per cell,
 * HMTX_SERVE_BURST_DUTY the arrival burstiness (bench/common.hh).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "workloads/kv_serve.hh"

using namespace hmtx;

namespace
{

constexpr unsigned kCores = 4;

sim::MachineConfig
servingConfig(TxMode mode, sim::Fabric fabric)
{
    sim::MachineConfig cfg;
    bench::applyEngineEnv(cfg);
    cfg.numCores = kCores;
    // Small hierarchy (the crossover bench's geometry): the serving
    // footprints are per-request tiny, but the hot Zipfian working
    // set plus four in-flight speculative sets is what pressures the
    // bounded machines — best-effort burns capacity aborts into its
    // fallback lock and limited-set trips its K bound, while full
    // HMTX spills to the overflow table and keeps pipelining.
    cfg.l1SizeKB = 1;
    cfg.l1Assoc = 2;
    cfg.l2SizeKB = 8;
    cfg.l2Assoc = 8;
    // A wider VID window (256) amortizes window rollovers across more
    // requests; the registry split keeps each vidReset O(spec lines)
    // regardless of how much committed dirty state the table built up.
    cfg.vidBits = 8;
    cfg.fabric = fabric;
    if (fabric == sim::Fabric::Directory)
        cfg.dirBanks = 8;
    cfg.txMode = mode;
    if (mode == TxMode::BestEffort) {
        cfg.btxMaxRetries = 2;
        cfg.btxAbortThreshold = 8;
        cfg.unboundedSpecSets = false;
    } else if (mode == TxMode::LimitedSet) {
        cfg.limitedSetK = 4;
        cfg.unboundedSpecSets = false;
    } else {
        cfg.unboundedSpecSets = true; // full HMTX: overflow table
    }
    // Host-perf only (bit-identical results); the serving engine runs
    // hit-dominated once the table is warm, so keep the fast path on.
    if (!std::getenv("HMTX_FASTPATH"))
        cfg.fastPath = true;
    cfg.validate();
    return cfg;
}

workloads::KvServeParams
servingParams(const bench::ServeEnv& env, double theta, double write,
              std::uint64_t requests, std::uint64_t seed)
{
    workloads::KvServeParams p;
    p.requests = env.ops > 0 ? env.ops : requests;
    p.tableBuckets = 2048;
    p.keys = 8192;
    p.zipfTheta = theta;
    p.writeRatio = write;
    p.transferShare = 0.15;
    p.scanShare = 0.05;
    // Offered load ~94% of the slowest cell's service capacity (the
    // saturated sweep measures ~250-370 cycles/request system-wide):
    // every mode still sustains the throughput, so the percentiles
    // compare queueing + serialization episodes rather than makespan
    // ramps of an overloaded queue. Smooth arrivals by default — the
    // tail then isolates the commit-mode differences; the burst knob
    // (HMTX_SERVE_BURST_DUTY) compresses the same load into
    // heavy-tailed ON periods, which dominates every mode's tail
    // equally.
    p.arrivalMeanGap = 1500;
    p.burstDuty = env.burstDuty >= 0 ? env.burstDuty : 1.0;
    p.seed = seed;
    return p;
}

const char*
fabricName(sim::Fabric f)
{
    return f == sim::Fabric::Directory ? "directory" : "snoop-bus";
}

void
requireClean(const workloads::KvServeResult& r, const char* what)
{
    if (!r.serve.consistent()) {
        std::fprintf(stderr,
                     "FATAL: %s: inconsistent serve accounting "
                     "(issued %llu, committed %llu, aborted %llu)\n",
                     what,
                     static_cast<unsigned long long>(r.serve.issued),
                     static_cast<unsigned long long>(
                         r.serve.committed),
                     static_cast<unsigned long long>(r.serve.aborted));
        std::exit(1);
    }
    if (!r.oracleOk) {
        std::fprintf(stderr, "FATAL: %s: final table diverged from "
                             "the sequential oracle\n",
                     what);
        std::exit(1);
    }
}

/** The fixed profile/gate cell: warm mid-skew lazy HMTX on the bus. */
workloads::KvServeResult
runGateCell(const bench::ServeEnv& env, std::uint64_t requests,
            bool recordLatencies)
{
    workloads::KvServeParams p =
        servingParams(env, 0.9, 0.5, requests, 42);
    p.recordLatencies = recordLatencies;
    const workloads::KvServeResult r =
        workloads::runKvServe(
            servingConfig(TxMode::LazyHmtx, sim::Fabric::SnoopBus), p);
    requireClean(r, "gate cell");
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::ServeEnv env = bench::serveEnv();

    if (argc > 1 && std::strcmp(argv[1], "--gate") == 0) {
        // CI throughput floor: one fixed streaming cell, host
        // requests/sec on stdout for ci/check.sh to compare against
        // the committed BENCH_serving.json baseline.
        const workloads::KvServeResult r = runGateCell(env, 60000,
                                                       false);
        std::printf("gate_requests_per_sec %.0f\n",
                    static_cast<double>(r.serve.committed) /
                        r.hostSeconds);
        return 0;
    }

    const char* outPath = argc > 1 ? argv[1] : "BENCH_serving.json";
    const TxMode modes[] = {TxMode::LazyHmtx, TxMode::EagerHmtx,
                            TxMode::BestEffort, TxMode::LimitedSet};
    const sim::Fabric fabrics[] = {sim::Fabric::SnoopBus,
                                   sim::Fabric::Directory};
    std::vector<double> thetas{0.0, 0.9, 1.2};
    std::vector<double> writes{0.1, 0.5};
    if (env.theta >= 0)
        thetas = {env.theta};
    if (env.writeRatio >= 0)
        writes = {env.writeRatio};
    const std::uint64_t kRequests = 25000;

    std::printf("KV/OLTP serving sweep: %zu modes x %zu fabrics x "
                "%zu skews x %zu write mixes, %llu requests/cell\n",
                std::size(modes), std::size(fabrics), thetas.size(),
                writes.size(),
                static_cast<unsigned long long>(
                    env.ops > 0 ? env.ops : kRequests));

    std::FILE* js = std::fopen(outPath, "w");
    if (!js) {
        std::fprintf(stderr, "FATAL: cannot open %s\n", outPath);
        return 1;
    }

    // Profile: streaming histogram vs naive record-every-latency on
    // the gate cell, plus the registry-split micro numbers
    // (micro_hotpath BM_VidResetDirtyBg, 64Ki dirty committed lines
    // in the background) that took vidReset from O(dirty working set)
    // to O(spec lines) — the overhaul that sustains 1M+ requests.
    const std::uint64_t profReq = env.ops > 0 ? env.ops : 60000;
    runGateCell(env, profReq, false); // warm the allocator/page cache
    const workloads::KvServeResult stream =
        runGateCell(env, profReq, false);
    const workloads::KvServeResult naive =
        runGateCell(env, profReq, true);
    const double streamRps =
        static_cast<double>(stream.serve.committed) /
        stream.hostSeconds;
    const double naiveRps =
        static_cast<double>(naive.serve.committed) /
        naive.hostSeconds;
    std::printf("\nprofile (%llu requests, lazy/snoop-bus): "
                "streaming %.0f req/s host, naive-recorded %.0f "
                "req/s host\n",
                static_cast<unsigned long long>(profReq), streamRps,
                naiveRps);
    std::fprintf(
        js,
        "{\n \"config\": {\n"
        "  \"cores\": %u,\n  \"vidBits\": 8,\n"
        "  \"tableBuckets\": 2048,\n  \"keys\": 8192,\n"
        "  \"requests_per_cell\": %llu,\n"
        "  \"arrival_mean_gap\": 1500,\n"
        "  \"burst_duty\": %.2f,\n"
        "  \"transfer_share\": 0.15,\n  \"scan_share\": 0.05\n },\n"
        " \"profile\": {\n"
        "  \"gate_cell\": \"lazy-hmtx/snoop-bus theta=0.9 "
        "write=0.5\",\n"
        "  \"gate_requests\": %llu,\n"
        "  \"streaming_requests_per_sec\": %.0f,\n"
        "  \"naive_recorded_requests_per_sec\": %.0f,\n"
        "  \"registry_split_micro\": {\n"
        "   \"benchmark\": \"micro_hotpath BM_VidResetDirtyBg "
        "(64Ki dirty committed background lines)\",\n"
        "   \"vid_reset_us_before_split\": {\"clean\": 33.7, "
        "\"dirty_bg\": 1552.0},\n"
        "   \"vid_reset_us_after_split\": {\"clean\": 11.0, "
        "\"dirty_bg\": 11.6}\n  }\n },\n \"sweep\": [\n",
        kCores,
        static_cast<unsigned long long>(env.ops > 0 ? env.ops
                                                    : kRequests),
        env.burstDuty >= 0 ? env.burstDuty : 1.0,
        static_cast<unsigned long long>(profReq), streamRps,
        naiveRps);

    // p999 per (fabric, theta, write) for the btx-vs-lazy headline.
    std::map<std::string, std::uint64_t> p999;
    std::uint64_t total = 0;
    std::size_t cellIdx = 0;
    const std::size_t cellCount = std::size(modes) *
        std::size(fabrics) * thetas.size() * writes.size();

    for (const sim::Fabric fabric : fabrics) {
        for (const double theta : thetas) {
            for (const double write : writes) {
                std::printf("\n%s theta=%.2f write=%.2f\n",
                            fabricName(fabric), theta, write);
                std::printf("%-13s | %10s %8s | %8s %8s %8s | %7s "
                            "%7s\n",
                            "mode", "cyc/req", "req/s", "p50", "p99",
                            "p999", "aborts", "fbEnt");
                for (const TxMode mode : modes) {
                    const std::uint64_t seed = 42 + cellIdx;
                    const workloads::KvServeResult r =
                        workloads::runKvServe(
                            servingConfig(mode, fabric),
                            servingParams(env, theta, write,
                                          kRequests, seed));
                    requireClean(r, txModeName(mode));
                    total += r.serve.committed;

                    const double cpr =
                        static_cast<double>(r.makespan) /
                        static_cast<double>(r.serve.committed);
                    const double rps =
                        static_cast<double>(r.serve.committed) /
                        r.hostSeconds;
                    const std::uint64_t q50 =
                        r.serve.latency.percentile(0.50);
                    const std::uint64_t q99 =
                        r.serve.latency.percentile(0.99);
                    const std::uint64_t q999 =
                        r.serve.latency.percentile(0.999);
                    std::printf("%-13s | %10.1f %8.0f | %8llu %8llu "
                                "%8llu | %7llu %7llu\n",
                                txModeName(mode), cpr, rps,
                                static_cast<unsigned long long>(q50),
                                static_cast<unsigned long long>(q99),
                                static_cast<unsigned long long>(q999),
                                static_cast<unsigned long long>(
                                    r.sys.aborts),
                                static_cast<unsigned long long>(
                                    r.tx.fallbackEntries));

                    char key[96];
                    std::snprintf(key, sizeof key, "%s|%.2f|%.2f|%s",
                                  fabricName(fabric), theta, write,
                                  txModeName(mode));
                    p999[key] = q999;

                    std::fprintf(
                        js,
                        "  {\"mode\": \"%s\", \"fabric\": \"%s\", "
                        "\"theta\": %.2f, \"write_ratio\": %.2f,\n"
                        "   \"requests\": %llu, \"makespan\": %llu, "
                        "\"cycles_per_req\": %.1f, "
                        "\"host_requests_per_sec\": %.0f,\n"
                        "   \"p50\": %llu, \"p99\": %llu, "
                        "\"p999\": %llu, \"max\": %llu, "
                        "\"mean\": %.1f,\n"
                        "   \"aborts\": %llu, \"drains\": %llu, "
                        "\"window_resets\": %llu, "
                        "\"fallback_entries\": %llu, "
                        "\"fallback_cycles\": %llu, "
                        "\"limited_set_aborts\": %llu, "
                        "\"non_spec_fallbacks\": %llu}%s\n",
                        txModeName(mode), fabricName(fabric), theta,
                        write,
                        static_cast<unsigned long long>(
                            r.serve.committed),
                        static_cast<unsigned long long>(r.makespan),
                        cpr, rps,
                        static_cast<unsigned long long>(q50),
                        static_cast<unsigned long long>(q99),
                        static_cast<unsigned long long>(q999),
                        static_cast<unsigned long long>(
                            r.serve.latency.max()),
                        r.serve.latency.mean(),
                        static_cast<unsigned long long>(r.sys.aborts),
                        static_cast<unsigned long long>(
                            r.serve.drains),
                        static_cast<unsigned long long>(
                            r.serve.windowResets),
                        static_cast<unsigned long long>(
                            r.tx.fallbackEntries),
                        static_cast<unsigned long long>(
                            r.tx.fallbackCycles),
                        static_cast<unsigned long long>(
                            r.tx.limitedSetAborts),
                        static_cast<unsigned long long>(
                            r.serve.nonSpecFallbacks),
                        ++cellIdx < cellCount ? "," : "");
                }
            }
        }
    }

    // Headline: where does the bounded best-effort machine's tail
    // diverge from unbounded HMTX? Worst (and per-skew) btx/lazy
    // p999 ratios; the bench fails if no cell degrades by >= 1.2x.
    double worst = 0.0;
    std::string worstKey;
    std::fprintf(js, " ],\n \"p999_btx_over_lazy\": {\n");
    bool first = true;
    for (const sim::Fabric fabric : fabrics) {
        for (const double theta : thetas) {
            for (const double write : writes) {
                char base[96];
                std::snprintf(base, sizeof base, "%s|%.2f|%.2f",
                              fabricName(fabric), theta, write);
                const std::uint64_t lazy =
                    p999[std::string(base) + "|" +
                         txModeName(TxMode::LazyHmtx)];
                const std::uint64_t btx =
                    p999[std::string(base) + "|" +
                         txModeName(TxMode::BestEffort)];
                const double ratio = lazy
                    ? static_cast<double>(btx) /
                        static_cast<double>(lazy)
                    : 0.0;
                if (ratio > worst) {
                    worst = ratio;
                    worstKey = base;
                }
                std::fprintf(js, "%s  \"%s\": %.3f",
                             first ? "" : ",\n", base, ratio);
                first = false;
            }
        }
    }
    const bool degraded = worst >= 1.2;
    std::fprintf(js,
                 "\n },\n \"headline\": {\"worst_btx_over_lazy_p999\":"
                 " %.3f, \"at\": \"%s\", \"degrades\": %s},\n"
                 " \"total_requests\": %llu\n}\n",
                 worst, worstKey.c_str(),
                 degraded ? "true" : "false",
                 static_cast<unsigned long long>(total + 2 * profReq));
    std::fclose(js);

    std::printf("\n%llu transactions served across the sweep "
                "(+%llu in the profile cells)\nwrote %s\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(2 * profReq),
                outPath);
    if (!degraded) {
        std::printf("NO p999 divergence: best-effort never degraded "
                    "lazy HMTX's tail by >= 1.2x\n");
        return 2;
    }
    std::printf("headline: best-effort degrades p999 by %.2fx at "
                "[%s] — fallback serialization is the tail\n",
                worst, worstKey.c_str());
    return 0;
}
