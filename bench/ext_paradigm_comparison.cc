/**
 * @file
 * Extension bench: speculative DOACROSS (TLS-style, one transaction
 * per iteration per core) vs speculative PS-DSWP (multithreaded
 * transactions), §2.1/§2.2.
 *
 * Part 1 sweeps the weight of the loop's *sequential* portion: the
 * part that carries the loop dependence and therefore sits on
 * DOACROSS's serial chain (token + sequential work every iteration)
 * but streams on PS-DSWP's dedicated first stage. The crossover is
 * the paper's argument: real pointer-chasing loops have substantial
 * sequential portions, so pipeline parallelism wins and needs MTX
 * support.
 *
 * Part 2 reports the benchmark suite for completeness. Our proxies
 * keep stage 1 deliberately thin (a work-list chase), which flatters
 * DOACROSS — an honest caveat recorded in EXPERIMENTS.md.
 */

#include "bench/common.hh"
#include "workloads/linked_list.hh"

using namespace hmtx;
using namespace hmtx::bench;

int
main()
{
    sim::MachineConfig cfg; // Table 2, 4 cores
    applyEngineEnv(cfg);

    std::printf("Extension §2.1: DOACROSS (TLS) vs PS-DSWP (MTX)\n");
    std::printf("\nPart 1: sweep of the sequential-stage weight "
                "(linked list, 200 iterations,\n240-round work "
                "function)\n");
    rule(92);
    std::printf("%-14s | %-12s %-9s | %-12s %-9s | %-10s\n",
                "stage1 weight", "DOACROSS", "speedup", "PS-DSWP",
                "speedup", "winner");
    rule(92);
    for (unsigned s1 : {0u, 120u, 300u, 600u}) {
        workloads::LinkedListWorkload::Params p;
        p.nodes = 200;
        p.workRounds = 240;
        p.stage1Rounds = s1;

        workloads::LinkedListWorkload seqWl(p), daWl(p), psWl(p);
        runtime::ExecResult seq =
            runtime::Runner::runSequential(seqWl, cfg);
        runtime::ExecResult rd =
            runtime::Runner::runDoacross(daWl, cfg, cfg.numCores);
        runtime::ExecResult rp = runtime::Runner::runHmtx(psWl, cfg);
        requireChecksum("sweep", seq, rd);
        requireChecksum("sweep", seq, rp);

        double sd = speedup(seq, rd);
        double sp = speedup(seq, rp);
        std::printf(
            "%3u cycles    | %12llu %8.2fx | %12llu %8.2fx | %-10s\n",
            s1, static_cast<unsigned long long>(rd.cycles), sd,
            static_cast<unsigned long long>(rp.cycles), sp,
            sp > sd ? "PS-DSWP" : "DOACROSS");
    }
    rule(92);

    std::printf("\nPart 2: benchmark suite (thin-stage-1 proxies; "
                "see caveat below)\n");
    rule(92);
    std::vector<double> da, ps;
    for (auto& wl : workloads::makeSuite()) {
        const std::string name = wl->name();
        if (wl->paradigm() == runtime::Paradigm::Doall)
            continue; // no loop-carried dependence to compare

        auto seqWl = workloads::makeByName(name);
        runtime::ExecResult seq =
            runtime::Runner::runSequential(*seqWl, cfg);
        auto daWl = workloads::makeByName(name);
        runtime::ExecResult rd =
            runtime::Runner::runDoacross(*daWl, cfg, cfg.numCores);
        requireChecksum(name, seq, rd);
        auto psWl = workloads::makeByName(name);
        runtime::ExecResult rp = runtime::Runner::runHmtx(*psWl, cfg);
        requireChecksum(name, seq, rp);

        da.push_back(speedup(seq, rd));
        ps.push_back(speedup(seq, rp));
        std::printf("%-12s | DOACROSS %5.2fx | PS-DSWP %5.2fx\n",
                    name.c_str(), da.back(), ps.back());
    }
    std::printf("%-12s | DOACROSS %5.2fx | PS-DSWP %5.2fx\n",
                "Geomean", geomean(da), geomean(ps));
    rule(92);
    std::printf(
        "\nReading: with a negligible sequential stage DOACROSS "
        "degenerates to speculative\nDOALL and wins; as the "
        "sequential portion grows, its (token + stage 1) serial\n"
        "chain caps throughput while PS-DSWP keeps streaming — the "
        "crossover in Part 1.\nReal pointer-chasing hot loops sit on "
        "the PS-DSWP side (the paper's motivation);\nour scaled "
        "proxies' stage 1 is a thin work-list chase, so Part 2 "
        "flatters DOACROSS.\nBoth paradigms run on HMTX: DOACROSS "
        "needs only TLS-style transactions, PS-DSWP\nneeds the "
        "multithreaded transactions this system contributes.\n");
    return 0;
}
