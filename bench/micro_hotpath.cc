/**
 * @file
 * Microbenchmarks of the simulator's protocol hot paths, comparing
 * the indexed implementation (address presence filter + speculative
 * line registry) against the pre-index behaviour
 * (MachineConfig::forceFullScan, which walks every cache slot).
 *
 * Two geometries are measured: a small "seed" L2 (256 KB, 4 Ki
 * resident lines) and the paper's Table 2 L2 (32 MB, populated with
 * 64 Ki resident lines). Cache sets materialize slots lazily, so a
 * full scan costs O(resident lines); with the indexes every bulk
 * operation — eager commit, abortAll, vidReset — visits only the
 * handful of speculative/dirty lines regardless of how much clean
 * data the caches hold.
 *
 * Run with --smoke for a fast self-check (used as a ctest): it runs
 * an identical operation script in both modes, asserts the
 * architectural statistics are bit-identical, and asserts the indexed
 * bulk operations are at least 2x faster at Table 2 geometry.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/common.hh"
#include "sim/cache_system.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace hmtx;

constexpr Addr kSpecBase = 0x100000;
constexpr Addr kBackBase = 0xA00000;

sim::MachineConfig
makeCfg(bool table2, bool fullScan)
{
    sim::MachineConfig cfg; // Table 2 defaults
    bench::applyEngineEnv(cfg);
    if (!table2)
        cfg.l2SizeKB = 256; // small seed-style geometry
    cfg.forceFullScan = fullScan;
    return cfg;
}

/** Clean resident lines to load per geometry (most of the L2). */
unsigned
backgroundLines(bool table2)
{
    return table2 ? 65536 : 4096;
}

/**
 * Fills the L2 with clean non-speculative background lines. These are
 * exactly the lines a full-scan bulk walk wastes time skipping and
 * the registry never holds.
 */
void
populateBackground(sim::CacheSystem& sys, unsigned lines)
{
    for (unsigned i = 0; i < lines; ++i)
        sys.load(0, kBackBase + Addr{i} * 64, 8, 0);
}

/** Issues @p n speculative stores spread over cores and VIDs 1..8. */
void
specStores(sim::CacheSystem& sys, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        sys.store(i % 4, kSpecBase + Addr{i} * 64, i + 1, 8,
                  1 + (i % 8));
}

/** Lines in the hit-dominated stream's working set (fits the L1). */
constexpr unsigned kHitLines = 64;

/**
 * Issues @p accesses store+load pairs from one core over kHitLines
 * speculative lines at a fixed VID. After the first lap every access
 * is a pure L1 hit on a line already in the exact required state —
 * the stream the §13 fast path retires without touching the protocol
 * walk or the event machinery.
 */
void
hitStream(sim::CacheSystem& sys, unsigned accesses)
{
    for (unsigned i = 0; i < accesses; ++i) {
        const Addr la = kSpecBase + Addr{i % kHitLines} * 64;
        sys.store(0, la, i, 8, 1);
        benchmark::DoNotOptimize(sys.load(0, la, 8, 1));
    }
}

// --- benchmarks ------------------------------------------------------------
//
// Args: {table2 geometry (0/1), forceFullScan (0/1)}

void
BM_AbortAll(benchmark::State& state)
{
    sim::EventQueue eq;
    sim::CacheSystem sys(eq, makeCfg(state.range(0), state.range(1)));
    populateBackground(sys, backgroundLines(state.range(0)));
    for (auto _ : state) {
        specStores(sys, 64);
        benchmark::DoNotOptimize(sys.abortAll());
    }
}
BENCHMARK(BM_AbortAll)
    ->Args({0, 0})->Args({0, 1})->Args({1, 0})->Args({1, 1})
    ->Unit(benchmark::kMicrosecond);

void
BM_VidReset(benchmark::State& state)
{
    // Lazy commit (the default): commit() is a cheap watermark bump
    // and the deferred reconcile work lands in vidReset()'s walk.
    sim::EventQueue eq;
    sim::CacheSystem sys(eq, makeCfg(state.range(0), state.range(1)));
    populateBackground(sys, backgroundLines(state.range(0)));
    for (auto _ : state) {
        specStores(sys, 64);
        for (Vid v = 1; v <= 8; ++v)
            sys.commit(v);
        benchmark::DoNotOptimize(sys.vidReset());
    }
}
BENCHMARK(BM_VidReset)
    ->Args({0, 0})->Args({0, 1})->Args({1, 0})->Args({1, 1})
    ->Unit(benchmark::kMicrosecond);

void
BM_VidResetDirtyBg(benchmark::State& state)
{
    // Serving-shaped variant of BM_VidReset: the background lines are
    // dirty *committed* table data (a KV store's working set stays
    // dirty-in-cache for the whole run), not clean fills. Bulk walks
    // must not pay for them — vidReset/commit/abort only act on
    // speculative lines, so with the class-split registry the reset
    // walk scales with the window's speculative footprint, not the
    // dirty working set. Arg: table2 geometry (0/1); indexed mode
    // only (the full-scan cost is BM_VidReset's story).
    sim::EventQueue eq;
    sim::CacheSystem sys(eq, makeCfg(state.range(0), false));
    const unsigned lines = backgroundLines(state.range(0));
    for (unsigned i = 0; i < lines; ++i)
        sys.store(0, kBackBase + Addr{i} * 64, i, 8, 0);
    for (auto _ : state) {
        specStores(sys, 64);
        for (Vid v = 1; v <= 8; ++v)
            sys.commit(v);
        benchmark::DoNotOptimize(sys.vidReset());
    }
}
BENCHMARK(BM_VidResetDirtyBg)
    ->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void
BM_EagerCommit(benchmark::State& state)
{
    // Naive commit processing (§4.4): every commit walks the caches.
    auto cfg = makeCfg(state.range(0), state.range(1));
    cfg.txMode = TxMode::EagerHmtx;
    sim::EventQueue eq;
    sim::CacheSystem sys(eq, cfg);
    populateBackground(sys, backgroundLines(state.range(0)));
    for (auto _ : state) {
        specStores(sys, 64);
        for (Vid v = 1; v <= 8; ++v)
            benchmark::DoNotOptimize(sys.commit(v));
        sys.vidReset();
    }
}
BENCHMARK(BM_EagerCommit)
    ->Args({0, 0})->Args({0, 1})->Args({1, 0})->Args({1, 1})
    ->Unit(benchmark::kMicrosecond);

void
BM_AccessThroughput(benchmark::State& state)
{
    // Mixed load/store stream over a working set larger than the L1:
    // exercises findLocal, the presence-filtered findRemote/snoop
    // path, fills and evictions.
    sim::EventQueue eq;
    sim::CacheSystem sys(eq, makeCfg(state.range(0), state.range(1)));
    constexpr unsigned kLines = 4096; // 256 KB working set
    Addr a = 0;
    for (auto _ : state) {
        sys.store(a % 4, kBackBase + (a % kLines) * 64, a, 8, 0);
        benchmark::DoNotOptimize(
            sys.load((a + 1) % 4, kBackBase + (a % kLines) * 64, 8,
                     0));
        ++a;
    }
    state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_AccessThroughput)
    ->Args({0, 0})->Args({0, 1})->Args({1, 0})->Args({1, 1});

void
BM_HitFastPath(benchmark::State& state)
{
    // Hit-dominated per-access cost with the zero-event fast path off
    // (arg 0) and on (arg 1); ci/check.sh gates on the on/off ratio.
    // Both runs are architecturally bit-identical — only host time
    // and the sim.fastpath.* diagnostics differ.
    auto cfg = makeCfg(true, false);
    cfg.fastPath = state.range(0);
    sim::EventQueue eq;
    sim::CacheSystem sys(eq, cfg);
    hitStream(sys, kHitLines); // warm lap: fills and plants tags
    unsigned i = 0;
    for (auto _ : state) {
        const Addr la = kSpecBase + Addr{i % kHitLines} * 64;
        sys.store(0, la, i, 8, 1);
        benchmark::DoNotOptimize(sys.load(0, la, 8, 1));
        ++i;
    }
    state.SetItemsProcessed(2 * state.iterations());
    state.counters["fast_hit_rate"] = sys.fastStats().hitRate();
}
BENCHMARK(BM_HitFastPath)->Arg(0)->Arg(1);

// --- smoke self-check ------------------------------------------------------

/** One deterministic protocol workout; returns its wall time. */
double
runScript(sim::CacheSystem& sys, unsigned rounds)
{
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < rounds; ++r) {
        specStores(sys, 64);
        sys.abortAll();
        specStores(sys, 64);
        for (Vid v = 1; v <= 8; ++v)
            sys.commit(v);
        sys.vidReset();
    }
    sys.flushDirtyToMemory();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

int
smoke()
{
    // Table 2 geometry. The cross-check itself is a full scan, so it
    // runs once after the timed section rather than per operation.
    sim::EventQueue eq1, eq2;
    sim::CacheSystem indexed(eq1, makeCfg(true, false));
    sim::CacheSystem fullScan(eq2, makeCfg(true, true));
    populateBackground(indexed, backgroundLines(true));
    populateBackground(fullScan, backgroundLines(true));

    constexpr unsigned kRounds = 50;
    double tIdx = runScript(indexed, kRounds);
    double tFull = runScript(fullScan, kRounds);
    indexed.verifyIndexes();
    fullScan.verifyIndexes();

    if (!(indexed.stats() == fullScan.stats())) {
        std::fprintf(stderr,
                     "FAIL: indexed and full-scan statistics "
                     "diverge\n");
        return 1;
    }
    indexed.checkInvariants();
    fullScan.checkInvariants();

    const double ratio = tFull / tIdx;
    std::printf("smoke: indexed %.3fs, full-scan %.3fs, ratio "
                "%.1fx (snoop filter rate %.2f)\n",
                tIdx, tFull, ratio,
                indexed.indexStats().snoopFilterRate());
    if (ratio < 2.0) {
        std::fprintf(stderr,
                     "FAIL: indexed bulk ops only %.1fx faster than "
                     "full scans (expected >= 2x)\n",
                     ratio);
        return 1;
    }

    // Fast-path cross-check (DESIGN.md §13): the hit-dominated stream
    // must be architecturally bit-identical with the fast path on and
    // off, and with it on it must actually retire on the fast path.
    // Timing is gated in Release by ci/check.sh, not here.
    auto offCfg = makeCfg(true, false);
    offCfg.fastPath = false;
    auto onCfg = makeCfg(true, false);
    onCfg.fastPath = true;
    sim::EventQueue eqOff, eqOn;
    sim::CacheSystem fpOff(eqOff, offCfg);
    sim::CacheSystem fpOn(eqOn, onCfg);
    constexpr unsigned kHitAccesses = 10000;
    hitStream(fpOff, kHitAccesses);
    hitStream(fpOn, kHitAccesses);
    if (!(fpOff.stats() == fpOn.stats())) {
        std::fprintf(stderr,
                     "FAIL: fast path on/off statistics diverge\n");
        return 1;
    }
    if (fpOff.fastStats().attempts != 0) {
        std::fprintf(stderr,
                     "FAIL: fast probes attempted while disabled\n");
        return 1;
    }
    const double hitRate = fpOn.fastStats().hitRate();
    std::printf("smoke: fast-path hit rate %.3f on the hit stream\n",
                hitRate);
    if (hitRate < 0.9) {
        std::fprintf(stderr,
                     "FAIL: fast-path hit rate %.3f on a "
                     "hit-dominated stream (expected >= 0.9)\n",
                     hitRate);
        return 1;
    }
    fpOff.checkInvariants();
    fpOn.checkInvariants();

    std::printf("smoke: OK\n");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            return smoke();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // Build type of *this tree*, not of the benchmark library; the
    // harness gates on it to keep debug timings out of the baselines.
#ifdef HMTX_BUILD_TYPE
    benchmark::AddCustomContext("hmtx_build_type", HMTX_BUILD_TYPE);
#else
    benchmark::AddCustomContext("hmtx_build_type", "unknown");
#endif
    // Commit-mode axis of the measured configs (the hot paths run the
    // lazy default); keeps every BENCH report self-describing.
    {
        const hmtx::sim::MachineConfig cfg = makeCfg(true, false);
        benchmark::AddCustomContext("hmtx_tx_mode",
                                    hmtx::txModeName(cfg.txMode));
        benchmark::AddCustomContext(
            "hmtx_btx_max_retries",
            std::to_string(cfg.btxMaxRetries));
        benchmark::AddCustomContext(
            "hmtx_btx_abort_threshold",
            std::to_string(cfg.btxAbortThreshold));
        benchmark::AddCustomContext(
            "hmtx_limited_set_k", std::to_string(cfg.limitedSetK));
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
