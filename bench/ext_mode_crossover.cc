/**
 * @file
 * Commit-mode crossover bench: full HMTX (unbounded speculative sets
 * backed by the §5.4 overflow table) versus best-effort HTM with a
 * serialized global-lock fallback, under a rising per-transaction
 * write-set sweep on both interconnect fabrics.
 *
 * The experiment drives CacheSystem directly (no runtime executors)
 * with a pipeline of transactions striped across 4 cores: every
 * transaction stores W distinct lines of a private region, reads a
 * couple of them back, and occasionally collides on a shared line so
 * the retry budget is exercised too. Cost is tracked with per-core
 * lane clocks: an access charges its own lane, while commits, aborts,
 * and serialized fallback accesses synchronize every lane (they hold
 * the global bus/lock). The makespan of a cell is the maximum lane
 * clock once every transaction has committed.
 *
 * Small caches make the capacity axis bite: while W fits, best-effort
 * tracks sets for free and matches (or beats) the overflow-table
 * machinery; once write sets outgrow the hierarchy, best-effort burns
 * retries and collapses onto the serialized fallback while full HMTX
 * keeps pipelining through spills. The crossover point — the smallest
 * W where full HMTX is strictly faster — is printed per fabric and
 * recorded, with the `sim.txmode.*` fallback-serialization counters,
 * in BENCH_modes.json (path overridable as argv[1]).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/common.hh"
#include "sim/cache_system.hh"
#include "sim/event_queue.hh"
#include "sim/stats_report.hh"

using namespace hmtx;

namespace
{

constexpr unsigned kCores = 4;
constexpr unsigned kBatches = 12; // 48 transactions, inside one window
constexpr unsigned kMaxAttempts = 64;

sim::MachineConfig
cellConfig(TxMode mode, sim::Fabric fabric)
{
    sim::MachineConfig cfg;
    bench::applyEngineEnv(cfg);
    cfg.numCores = kCores;
    // Tiny hierarchy so the write-set sweep crosses the capacity
    // boundary mid-sweep instead of at absurd W.
    cfg.l1SizeKB = 1;
    cfg.l1Assoc = 2;
    cfg.l2SizeKB = 8;
    cfg.l2Assoc = 8;
    cfg.fabric = fabric;
    if (fabric == sim::Fabric::Directory)
        cfg.dirBanks = 8;
    cfg.txMode = mode;
    if (mode == TxMode::BestEffort) {
        cfg.btxMaxRetries = 2;
        cfg.btxAbortThreshold = 8; // early fallback once aborts pile up
        cfg.unboundedSpecSets = false;
    } else {
        cfg.unboundedSpecSets = true; // full HMTX: overflow table
    }
    cfg.validate();
    return cfg;
}

/** Result of one (mode, fabric, W) cell. */
struct CellResult
{
    std::uint64_t makespan = 0;
    std::uint64_t flushes = 0; ///< global aborts the pipeline absorbed
    sim::SysStats stats;
    TxModeStats tx;
};

/** One straight-line transaction body. */
struct TxInstr
{
    bool isStore;
    Addr addr;
    std::uint64_t value;
};

/** Per-core lane clocks with global synchronization points. */
struct LaneClock
{
    std::uint64_t t[kCores] = {};

    std::uint64_t
    maxT() const
    {
        std::uint64_t m = 0;
        for (std::uint64_t v : t)
            m = std::max(m, v);
        return m;
    }

    void
    local(unsigned core, std::uint64_t cycles)
    {
        t[core] += cycles;
    }

    /** Global event (commit, abort, serialized access): every lane
     *  waits for the slowest, then all advance together. */
    void
    global(std::uint64_t cycles)
    {
        const std::uint64_t m = maxT() + cycles;
        for (std::uint64_t& v : t)
            v = m;
    }
};

/**
 * Runs the whole transaction pipeline for one cell. Each batch puts
 * one transaction per core in flight (VIDs LC+1..LC+4), interleaves
 * their bodies round-robin, and commits a transaction the moment it
 * finishes at the head of the VID order. A global flush rewinds every
 * speculative transaction to its first instruction — but not the
 * fallback-lock holder, whose serialized progress is committed state
 * and survives the flush exactly as it does architecturally. That is
 * what makes the loop converge in best-effort mode: once the budget
 * arms, the oldest transaction serializes through any number of
 * younger capacity aborts, commits, and shrinks the batch.
 */
CellResult
runCell(const sim::MachineConfig& cfg, unsigned W)
{
    sim::EventQueue eq;
    sim::CacheSystem sys(eq, cfg);
    CellResult res;
    LaneClock lanes;

    const Addr sharedLine = 0x80000;
    Vid nextVid = 1;

    for (unsigned batch = 0; batch < kBatches; ++batch) {
        const Vid baseVid = nextVid;
        nextVid += kCores;
        // A sparse deterministic conflict: on its first run, every
        // fourth batch reads a shared line everywhere and then has
        // its oldest transaction store it, which must abort (§4.3).
        // Re-executions run with the dependence resolved.
        bool conflict = batch % 4 == 0;

        auto bodyOf = [&](unsigned c) {
            const Vid vid = baseVid + c;
            const Addr region =
                0x100000 + (static_cast<Addr>(vid) << 16);
            std::vector<TxInstr> body;
            if (conflict)
                body.push_back({false, sharedLine, 0});
            body.push_back({false, region, 0});
            body.push_back({false, region + 64, 0});
            for (unsigned w = 0; w < W; ++w)
                body.push_back({true,
                                region + static_cast<Addr>(w) * 64,
                                vid * 1000 + w});
            if (conflict && c == 0)
                body.push_back({true, sharedLine, vid});
            return body;
        };

        std::vector<std::vector<TxInstr>> body(kCores);
        for (unsigned c = 0; c < kCores; ++c)
            body[c] = bodyOf(c);
        unsigned progress[kCores] = {};
        bool committed[kCores] = {};
        const std::uint64_t flushCap = res.flushes + kMaxAttempts;

        for (;;) {
            bool all = true;
            for (bool b : committed)
                all = all && b;
            if (all)
                break;
            if (res.flushes >= flushCap) {
                std::fprintf(stderr,
                             "FATAL: batch %u stuck after %u flushes "
                             "(W=%u, mode=%s)\n",
                             batch, kMaxAttempts, W,
                             txModeName(cfg.txMode));
                std::exit(1);
            }
            for (unsigned c = 0; c < kCores; ++c) {
                if (committed[c] || progress[c] >= body[c].size())
                    continue;
                const Vid vid = baseVid + c;
                const TxInstr& in = body[c][progress[c]];
                const std::uint64_t fbBefore =
                    sys.txPolicy().stats().fallbackAccesses;
                const std::uint64_t abortsBefore = sys.stats().aborts;
                sim::AccessResult r = in.isStore
                    ? sys.store(c, in.addr, in.value, 8, vid)
                    : sys.load(c, in.addr, 8, vid);
                const bool serialized =
                    sys.txPolicy().stats().fallbackAccesses > fbBefore;
                if (serialized)
                    lanes.global(r.latency);
                else
                    lanes.local(c, r.latency);
                if (sys.stats().aborts > abortsBefore) {
                    // Global flush: every speculative transaction of
                    // the batch rewinds; the serialized lock holder
                    // (if any) keeps its committed progress, and its
                    // own collisions flush+retry internally without
                    // surfacing as an aborted access. The conflict
                    // dependence is consumed by whichever abort it
                    // raised.
                    ++res.flushes;
                    lanes.global(0);
                    const bool held = sys.txPolicy().fallbackHeld();
                    const Vid holder = sys.txPolicy().fallbackVid();
                    if (conflict) {
                        conflict = false;
                        for (unsigned k = 0; k < kCores; ++k)
                            if (!(held && baseVid + k == holder))
                                body[k] = bodyOf(k);
                    }
                    for (unsigned k = 0; k < kCores; ++k)
                        if (!committed[k] &&
                            !(held && baseVid + k == holder))
                            progress[k] = 0;
                    if (!r.aborted)
                        ++progress[c]; // serialized access completed
                    break;
                }
                ++progress[c];
            }
            // Commit every head-of-order transaction that finished;
            // commits broadcast, so they synchronize the lanes.
            for (unsigned c = 0; c < kCores; ++c) {
                if (committed[c] || progress[c] < body[c].size() ||
                    baseVid + c != sys.lcVid() + 1)
                    continue;
                lanes.global(sys.commit(baseVid + c));
                committed[c] = true;
            }
        }
    }

    res.makespan = lanes.maxT();
    res.stats = sys.stats();
    res.tx = sys.txPolicy().stats();
    sys.checkInvariants();
    return res;
}

const char*
fabricName(sim::Fabric f)
{
    return f == sim::Fabric::Directory ? "directory" : "snoop-bus";
}

void
emitTxRows(std::FILE* js, const TxModeStats& tx)
{
    std::fprintf(
        js,
        "     \"sim.txmode.retryAborts\": %llu,\n"
        "     \"sim.txmode.fallbackEntries\": %llu,\n"
        "     \"sim.txmode.fallbackAccesses\": %llu,\n"
        "     \"sim.txmode.fallbackCommits\": %llu,\n"
        "     \"sim.txmode.fallbackCycles\": %llu,\n"
        "     \"sim.txmode.fallbackWrapRemaps\": %llu,\n"
        "     \"sim.txmode.earlyFallbacks\": %llu,\n"
        "     \"sim.txmode.limitedSetAborts\": %llu",
        static_cast<unsigned long long>(tx.retryAborts),
        static_cast<unsigned long long>(tx.fallbackEntries),
        static_cast<unsigned long long>(tx.fallbackAccesses),
        static_cast<unsigned long long>(tx.fallbackCommits),
        static_cast<unsigned long long>(tx.fallbackCycles),
        static_cast<unsigned long long>(tx.fallbackWrapRemaps),
        static_cast<unsigned long long>(tx.earlyFallbacks),
        static_cast<unsigned long long>(tx.limitedSetAborts));
}

} // namespace

int
main(int argc, char** argv)
{
    const char* outPath = argc > 1 ? argv[1] : "BENCH_modes.json";
    const std::vector<unsigned> sweep{4, 8, 16, 32, 64};
    const sim::Fabric fabrics[] = {sim::Fabric::SnoopBus,
                                   sim::Fabric::Directory};

    std::printf("Commit-mode crossover: full HMTX (unbounded sets) vs "
                "best-effort + fallback\n%u cores, %u transactions, "
                "rising stores per transaction\n",
                kCores, kCores * kBatches);

    std::FILE* js = std::fopen(outPath, "w");
    if (!js) {
        std::fprintf(stderr, "FATAL: cannot open %s\n", outPath);
        return 1;
    }
    // Echo the commit-mode axis of the best-effort cell so the report
    // is self-describing (the full-HMTX cell is the lazy default).
    const sim::MachineConfig echo =
        cellConfig(TxMode::BestEffort, sim::Fabric::SnoopBus);
    std::fprintf(
        js,
        "{\n \"config\": {\n"
        "  \"cores\": %u,\n  \"transactions\": %u,\n"
        "  \"hmtx.txMode\": \"%s\",\n"
        "  \"hmtx.unboundedSpecSets\": true,\n"
        "  \"btx.txMode\": \"%s\",\n"
        "  \"btx.btxMaxRetries\": %u,\n"
        "  \"btx.btxAbortThreshold\": %u,\n"
        "  \"btx.limitedSetK\": %u\n },\n \"sweep\": [\n",
        kCores, kCores * kBatches, txModeName(TxMode::LazyHmtx),
        txModeName(echo.txMode), echo.btxMaxRetries,
        echo.btxAbortThreshold, echo.limitedSetK);

    bool crossoverEverywhere = true;
    unsigned crossover[2] = {0, 0};
    std::size_t cellIdx = 0;
    const std::size_t cellCount = 2 * sweep.size();

    for (unsigned fi = 0; fi < 2; ++fi) {
        const sim::Fabric fabric = fabrics[fi];
        std::printf("\n%s fabric\n", fabricName(fabric));
        std::printf("%-6s | %-12s | %-12s %-7s | %-8s %-9s %-9s %-8s\n",
                    "W", "hmtx cyc", "btx cyc", "ratio", "aborts",
                    "fbEntry", "fbCycles", "spills");
        for (unsigned i = 0; i < 70; ++i)
            std::putchar('-');
        std::putchar('\n');

        for (unsigned W : sweep) {
            CellResult hm =
                runCell(cellConfig(TxMode::LazyHmtx, fabric), W);
            CellResult be =
                runCell(cellConfig(TxMode::BestEffort, fabric), W);
            const double ratio = static_cast<double>(be.makespan) /
                static_cast<double>(hm.makespan);
            std::printf("%-6u | %12llu | %12llu %6.2fx | %8llu "
                        "%9llu %9llu %8llu\n",
                        W,
                        static_cast<unsigned long long>(hm.makespan),
                        static_cast<unsigned long long>(be.makespan),
                        ratio,
                        static_cast<unsigned long long>(
                            be.stats.aborts),
                        static_cast<unsigned long long>(
                            be.tx.fallbackEntries),
                        static_cast<unsigned long long>(
                            be.tx.fallbackCycles),
                        static_cast<unsigned long long>(
                            hm.stats.specSpills));
            if (crossover[fi] == 0 && hm.makespan < be.makespan)
                crossover[fi] = W;

            const double fbShare = be.makespan
                ? static_cast<double>(be.tx.fallbackCycles) /
                    static_cast<double>(be.makespan)
                : 0.0;
            std::fprintf(
                js,
                "  {\"fabric\": \"%s\", \"stores_per_tx\": %u,\n"
                "   \"hmtx\": {\"cycles\": %llu, \"flushes\": %llu, "
                "\"aborts\": %llu, \"specSpills\": %llu, "
                "\"specRefills\": %llu},\n"
                "   \"btx\": {\"cycles\": %llu, \"flushes\": %llu, "
                "\"aborts\": %llu, \"capacityAborts\": %llu, "
                "\"fallback_cycle_share\": %.4f,\n",
                fabricName(fabric), W,
                static_cast<unsigned long long>(hm.makespan),
                static_cast<unsigned long long>(hm.flushes),
                static_cast<unsigned long long>(hm.stats.aborts),
                static_cast<unsigned long long>(hm.stats.specSpills),
                static_cast<unsigned long long>(hm.stats.specRefills),
                static_cast<unsigned long long>(be.makespan),
                static_cast<unsigned long long>(be.flushes),
                static_cast<unsigned long long>(be.stats.aborts),
                static_cast<unsigned long long>(
                    be.stats.capacityAborts),
                fbShare);
            emitTxRows(js, be.tx);
            std::fprintf(js, "}}%s\n",
                         ++cellIdx < cellCount ? "," : "");
        }
    }

    for (unsigned fi = 0; fi < 2; ++fi) {
        if (crossover[fi] == 0) {
            crossoverEverywhere = false;
            std::printf("\n%s: NO crossover — best-effort never lost "
                        "within the sweep\n",
                        fabricName(fabrics[fi]));
        } else {
            std::printf("\n%s: full HMTX overtakes best-effort at "
                        "W=%u stores/tx\n",
                        fabricName(fabrics[fi]), crossover[fi]);
        }
    }

    std::fprintf(js,
                 " ],\n \"crossover_stores_per_tx\": "
                 "{\"snoop-bus\": %u, \"directory\": %u}\n}\n",
                 crossover[0], crossover[1]);
    std::fclose(js);
    std::printf("\nwrote %s\n", outPath);

    std::printf(
        "\nWhile write sets fit the hierarchy the bounded machine "
        "rides for free; past the\ncapacity boundary it pays retries "
        "and serialized fallback, while the overflow\ntable keeps "
        "full HMTX pipelining (§5.4).\n");
    return crossoverEverywhere ? 0 : 2;
}
