/**
 * @file
 * Ablation of lazy commit/abort processing (§5.3) against the naive
 * §4.4 scheme that walks and transitions every speculative line on
 * every commit. With per-transaction read/write sets of hundreds of
 * lines, the walk serializes commits and stalls the pipeline.
 */

#include "bench/common.hh"

using namespace hmtx;
using namespace hmtx::bench;

int
main()
{
    std::printf("Ablation §5.3: lazy vs naive (eager) commit/abort "
                "processing\n");
    rule(104);
    std::printf("%-12s | %-13s | %-13s | %-8s | %-12s | %-13s | %-14s\n",
                "Benchmark", "lazy cycles", "eager cycles",
                "slowdown", "set (lines)", "lazy commitcy",
                "eager commitcy");
    rule(104);

    // The large-footprint benchmarks expose the cost; ispell's tiny
    // sets barely notice — exactly the scaling §3.3 worries about.
    for (const char* name :
         {"ispell", "164.gzip", "197.parser", "130.li",
          "256.bzip2"}) {
        sim::MachineConfig lazy;
        applyEngineEnv(lazy);
        auto a = workloads::makeByName(name);
        runtime::ExecResult rl = runtime::Runner::runHmtx(*a, lazy);

        sim::MachineConfig eager = lazy;
        eager.txMode = TxMode::EagerHmtx;
        auto b = workloads::makeByName(name);
        runtime::ExecResult re = runtime::Runner::runHmtx(*b, eager);
        requireChecksum(name, rl, re);

        double lines = rl.transactions == 0 ? 0
            : static_cast<double>(rl.stats.combinedSetLines) /
                static_cast<double>(rl.transactions);
        std::printf(
            "%-12s | %13llu | %13llu | %7.2fx | %12.0f | %13llu | %14llu\n",
            name, static_cast<unsigned long long>(rl.cycles),
            static_cast<unsigned long long>(re.cycles),
            static_cast<double>(re.cycles) /
                static_cast<double>(rl.cycles),
            lines,
            static_cast<unsigned long long>(
                rl.stats.commitProcessingCycles),
            static_cast<unsigned long long>(
                re.stats.commitProcessingCycles));
    }
    rule(104);
    std::printf(
        "\nLazy processing commits in O(1) (set LC VID, flash the CB "
        "column) and reconciles\nlines on next touch; the naive "
        "scheme's cost grows with the speculative footprint,\n"
        "which is why Vachharajani's design could not support large "
        "read/write sets (§7.1).\n");
    return 0;
}
