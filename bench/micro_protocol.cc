/**
 * @file
 * google-benchmark microbenchmarks of the protocol primitives: the
 * pure version rules (hit predicate, store classification, commit and
 * abort transitions), the cascaded VID comparator, and end-to-end
 * cache-system operations (hits, versioned stores, group commit).
 * These measure the *simulator's* hot paths — useful when extending
 * the model — and sanity-check that the protocol logic is branch-light
 * enough to be credible as single-cycle hardware.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"
#include "core/comparator.hh"
#include "core/version_rules.hh"
#include "sim/cache_system.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace hmtx;

void
BM_VersionHits(benchmark::State& state)
{
    Vid a = 0;
    for (auto _ : state) {
        a = (a + 1) & 63;
        benchmark::DoNotOptimize(
            versionHits(State::SpecOwned, {2, 7}, a));
        benchmark::DoNotOptimize(
            versionHits(State::SpecModified, {5, 9}, a));
    }
}
BENCHMARK(BM_VersionHits);

void
BM_ClassifyStore(benchmark::State& state)
{
    Vid y = 1;
    for (auto _ : state) {
        y = (y & 63) + 1;
        if (versionHits(State::SpecModified, {1, 63}, y))
            benchmark::DoNotOptimize(
                classifyStore(State::SpecModified, {1, 63}, y));
    }
}
BENCHMARK(BM_ClassifyStore);

void
BM_CommitAbortTransitions(benchmark::State& state)
{
    Vid c = 0;
    for (auto _ : state) {
        c = (c + 1) & 63;
        benchmark::DoNotOptimize(
            commitLine(State::SpecModified, {3, 9}, c, true));
        benchmark::DoNotOptimize(
            abortLine(State::SpecOwned, {0, 9}, c, true));
    }
}
BENCHMARK(BM_CommitAbortTransitions);

void
BM_VidComparator(benchmark::State& state)
{
    VidComparator cmp(6);
    Vid v = 0;
    for (auto _ : state) {
        v = (v + 1) & 63;
        benchmark::DoNotOptimize(cmp.compare(v, (v + 1) & 63));
    }
}
BENCHMARK(BM_VidComparator);

void
BM_CacheL1Hit(benchmark::State& state)
{
    sim::EventQueue eq;
    sim::MachineConfig cfg;
    bench::applyEngineEnv(cfg);
    cfg.l2SizeKB = 256;
    sim::CacheSystem sys(eq, cfg);
    sys.store(0, 0x1000, 1, 8, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(sys.load(0, 0x1000, 8, 0));
}
BENCHMARK(BM_CacheL1Hit);

void
BM_SpeculativeStoreChain(benchmark::State& state)
{
    // Builds and commits a fresh version chain per iteration batch:
    // the full NewVersion + group-commit path.
    sim::EventQueue eq;
    sim::MachineConfig cfg;
    bench::applyEngineEnv(cfg);
    cfg.l2SizeKB = 256;
    sim::CacheSystem sys(eq, cfg);
    for (auto _ : state) {
        for (Vid v = 1; v <= 8; ++v)
            benchmark::DoNotOptimize(
                sys.store(v % 4, 0x2000, v, 8, v));
        for (Vid v = 1; v <= 8; ++v)
            sys.commit(v);
        sys.vidReset();
    }
}
BENCHMARK(BM_SpeculativeStoreChain);

void
BM_UncommittedForwarding(benchmark::State& state)
{
    sim::EventQueue eq;
    sim::MachineConfig cfg;
    bench::applyEngineEnv(cfg);
    cfg.l2SizeKB = 256;
    sim::CacheSystem sys(eq, cfg);
    for (auto _ : state) {
        sys.store(0, 0x3000, 42, 8, 1);
        benchmark::DoNotOptimize(sys.load(1, 0x3000, 8, 1));
        benchmark::DoNotOptimize(sys.load(2, 0x3000, 8, 2));
        sys.commit(1);
        sys.commit(2);
        sys.vidReset();
    }
}
BENCHMARK(BM_UncommittedForwarding);

void
BM_AbortFlush(benchmark::State& state)
{
    sim::EventQueue eq;
    sim::MachineConfig cfg;
    bench::applyEngineEnv(cfg);
    cfg.l2SizeKB = 256;
    sim::CacheSystem sys(eq, cfg);
    for (auto _ : state) {
        for (unsigned i = 0; i < 32; ++i)
            sys.store(i % 4, 0x4000 + i * 64, i, 8, 1);
        sys.abortAll();
    }
}
BENCHMARK(BM_AbortFlush);

} // namespace

BENCHMARK_MAIN();
