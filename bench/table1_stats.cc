/**
 * @file
 * Regenerates Table 1: per-benchmark statistics from speculative
 * execution under HMTX — parallel paradigm, hot-loop fraction,
 * speculative accesses per transaction, SLA-avoided aborts per
 * transaction, fraction of speculative loads needing an SLA, branch
 * density and misprediction rate. Our benchmarks run ~1000x smaller
 * inputs than native SPEC, so absolute access counts are scaled; the
 * paper's values are printed alongside.
 */

#include "bench/common.hh"

using namespace hmtx;
using namespace hmtx::bench;

int
main()
{
    sim::MachineConfig cfg;
    applyEngineEnv(cfg);

    std::printf("Table 1: Statistics from simulated speculative "
                "execution using HMTX\n");
    rule(110);
    std::printf("%-12s %-9s %-8s | %-11s %-11s | %-10s %-8s | %-9s "
                "%-8s | %-9s %-8s\n",
                "Benchmark", "Paradigm", "HotLoop%", "SpecAcc/TX",
                "(paper)", "SLAavoid/TX", "(paper)", "%needSLA",
                "(paper)", "%mispred", "(paper)");
    rule(110);

    for (auto& wl : workloads::makeSuite()) {
        const std::string name = wl->name();
        auto hm = workloads::makeByName(name);
        runtime::ExecResult r = runtime::Runner::runHmtx(*hm, cfg);
        const PaperRef& ref = paperRefs().at(name);

        double accPerTx = r.stats.avgSpecAccessesPerTx();
        double avoided = r.transactions == 0 ? 0.0
            : static_cast<double>(r.stats.avoidedAborts) /
                static_cast<double>(r.transactions);
        std::printf(
            "%-12s %-9s %7.1f%% | %11.0f %11.0f | %10.3f %8.3f | "
            "%8.2f%% %7.2f%% | %8.3f%% %7.3f%%\n",
            name.c_str(), paradigmName(wl->paradigm()),
            wl->hotLoopFraction() * 100, accPerTx, ref.accPerTx,
            avoided, ref.slaAvoidedPerTx,
            r.stats.slaNeededRate() * 100, ref.slaNeededPct,
            r.mispredictRate() * 100, ref.mispredictPct);
    }
    rule(110);
    std::printf("\nNotes: inputs are scaled ~1000x down from native "
                "SPEC runs, so SpecAcc/TX is\ncorrespondingly "
                "smaller; the cross-benchmark ordering matches "
                "Table 1. No\nmisspeculation occurred in any "
                "benchmark (§6.3).\n");
    return 0;
}
