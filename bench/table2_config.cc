/**
 * @file
 * Prints Table 2 — the architectural configuration — from the live
 * MachineConfig defaults, so drift between documentation and code is
 * impossible.
 */

#include <cstdio>

#include "bench/common.hh"
#include "power/model.hh"

using namespace hmtx;
using namespace hmtx::bench;

int
main()
{
    sim::MachineConfig c;
    applyEngineEnv(c); // table reflects the effective env-selected config

    std::printf("Table 2: Architectural configuration\n");
    rule(72);
    auto row = [](const char* feature, const std::string& param) {
        std::printf("%-28s %s\n", feature, param.c_str());
    };
    row("Architecture",
        "4-wide in-order timing model (Alpha 21264-class budget)");
    row("Clock Speed", "2.0 GHz");
    row("Cores", std::to_string(c.numCores));
    row("L1 I and D Caches",
        std::to_string(c.l1SizeKB) + "KB, " +
            std::to_string(c.l1Assoc) + "-way set associative, " +
            std::to_string(c.l1Latency) + " cycle latency");
    row("Shared L2 Cache",
        std::to_string(c.l2SizeKB / 1024) + "MB, " +
            std::to_string(c.l2Assoc) + "-way set associative, " +
            std::to_string(c.l2Latency) + " cycle latency");
    row("Cache Line Size", std::to_string(kLineBytes) + "B");
    row("Base Cache Coherence", "MOESI (snoopy bus)");
    row("Memory",
        std::to_string(c.memLatency) + " cycle latency (sparse)");
    row("VID width (m)", std::to_string(c.vidBits) + " bits -> " +
                             std::to_string(c.maxVid()) +
                             " concurrent transactions");
    row("SLA buffer", std::to_string(c.slaCapacity) + " entries");
    rule(72);

    power::PowerModel base(c, false), ext(c, true);
    std::printf("\nDerived (power model): commodity %.1f mm^2, "
                "+HMTX %.1f mm^2 (+%.1f);\nleakage %.3f W -> %.3f W\n",
                base.area().totalMm2(), ext.area().totalMm2(),
                ext.area().totalMm2() - base.area().totalMm2(),
                base.leakageW(), ext.leakageW());
    std::printf("\nPaper Table 2: Alpha 21264 @ 2.0 GHz, 64KB 8-way "
                "2-cycle L1s, 32MB 32-way\n40-cycle shared L2, 64B "
                "lines, MOESI, 1GB 200-cycle memory, Linux 2.6.27, "
                "GCC 4.3.2.\nFull-system OS/compiler details are "
                "abstracted by the simulator (DESIGN.md).\n");
    return 0;
}
