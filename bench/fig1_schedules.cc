/**
 * @file
 * Regenerates Figure 1's comparison: sequential vs DOACROSS vs DSWP
 * vs PS-DSWP on the linked-list loop, demonstrating the two §2.1
 * claims — DOACROSS and DSWP "could only profitably make use of two
 * threads" while PS-DSWP keeps scaling, and DOACROSS pays the
 * inter-core latency every iteration while pipeline parallelism is
 * far less sensitive to it.
 */

#include "bench/common.hh"
#include "workloads/linked_list.hh"

using namespace hmtx;
using namespace hmtx::bench;

namespace
{

runtime::ExecResult
run(const std::string& which, unsigned threads,
    const sim::MachineConfig& cfg)
{
    workloads::LinkedListWorkload::Params p;
    p.nodes = 200;
    p.workRounds = 240;   // stage-2 work per node
    p.stage1Rounds = 200; // traversal-side processing per node
    workloads::LinkedListWorkload wl(p);
    if (which == "seq")
        return runtime::Runner::runSequential(wl, cfg);
    if (which == "doacross")
        return runtime::Runner::runDoacross(wl, cfg, threads);
    // Pipeline: 1 stage-1 core + (threads - 1) stage-2 workers.
    return runtime::Runner::runPipeline(wl, cfg, threads - 1);
}

} // namespace

int
main()
{
    sim::MachineConfig base; // Table 2: cache-to-cache = 40 cycles
    applyEngineEnv(base);
    sim::MachineConfig slow = base;
    slow.l2Latency = 120; // a high-latency interconnect

    std::printf("Figure 1: scheduling paradigms on the linked-list "
                "loop (200 iterations)\n");
    rule(92);
    std::printf("%-22s | %10s %9s | %10s %9s | %11s\n", "Model",
                "cyc @40", "speedup", "cyc @120", "speedup",
                "sensitivity");
    rule(92);

    runtime::ExecResult seqB = run("seq", 1, base);
    runtime::ExecResult seqS = run("seq", 1, slow);

    struct Row
    {
        const char* label;
        const char* model;
        unsigned threads;
    };
    const Row rows[] = {
        {"sequential", "seq", 1},
        {"DOACROSS (2 threads)", "doacross", 2},
        {"DOACROSS (4 threads)", "doacross", 4},
        {"DSWP     (2 threads)", "pipeline", 2},
        {"PS-DSWP  (4 threads)", "pipeline", 4},
    };
    for (const Row& row : rows) {
        runtime::ExecResult rb = run(row.model, row.threads, base);
        runtime::ExecResult rs = run(row.model, row.threads, slow);
        std::printf(
            "%-22s | %10llu %8.2fx | %10llu %8.2fx | %10.2fx\n",
            row.label, static_cast<unsigned long long>(rb.cycles),
            speedup(seqB, rb),
            static_cast<unsigned long long>(rs.cycles),
            speedup(seqS, rs),
            static_cast<double>(rs.cycles) /
                static_cast<double>(rb.cycles));
    }
    rule(92);
    std::printf(
        "\nPaper claims (§2.1): DOACROSS serializes (token latency + "
        "stage 1) per iteration, so\nit gains little beyond 2 threads "
        "and degrades as inter-core latency grows; DSWP is\nbounded "
        "by its largest stage; PS-DSWP replicates the parallel stage "
        "and keeps scaling.\n");
    return 0;
}
