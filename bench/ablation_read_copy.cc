/**
 * @file
 * Ablation of Vachharajani's copy-on-read policy (§7.1): creating a
 * new cache line version for every read from a new VID redundantly
 * stores read-only data, raising cache pressure; HMTX copies only on
 * speculative writes.
 */

#include "bench/common.hh"

using namespace hmtx;
using namespace hmtx::bench;

int
main()
{
    std::printf("Ablation §7.1: copy-on-read (Vachharajani) vs "
                "copy-on-write (HMTX)\n");
    rule(98);
    std::printf("%-12s | %-13s %-11s | %-13s %-11s | %-9s %-10s\n",
                "Benchmark", "HMTX cycles", "L1 misses",
                "CoR cycles", "L1 misses", "dup lines", "slowdown");
    rule(98);

    // Read-heavy benchmarks with shared structures show the pressure.
    for (const char* name :
         {"197.parser", "130.li", "456.hmmer", "052.alvinn"}) {
        sim::MachineConfig cow; // default: copy on speculative write
        applyEngineEnv(cow);
        auto a = workloads::makeByName(name);
        runtime::ExecResult rw = runtime::Runner::runHmtx(*a, cow);

        sim::MachineConfig cor = cow;
        cor.copyOnRead = true;
        auto b = workloads::makeByName(name);
        runtime::ExecResult rr = runtime::Runner::runHmtx(*b, cor);
        requireChecksum(name, rw, rr);

        std::printf(
            "%-12s | %13llu %11llu | %13llu %11llu | %9llu %8.2fx\n",
            name, static_cast<unsigned long long>(rw.cycles),
            static_cast<unsigned long long>(rw.stats.l1Misses),
            static_cast<unsigned long long>(rr.cycles),
            static_cast<unsigned long long>(rr.stats.l1Misses),
            static_cast<unsigned long long>(rr.stats.corDuplicates),
            static_cast<double>(rr.cycles) /
                static_cast<double>(rw.cycles));
    }
    rule(98);
    std::printf(
        "\nCopy-on-read allocates one redundant line per "
        "(speculatively read line, VID) pair —\nthe 'dup lines' "
        "column — evicting useful data when read sets rival the "
        "cache size\n(130.li). HMTX tracks readers with the highVID "
        "field on a single physical line\ninstead (§4.1, §7.1).\n");
    return 0;
}
