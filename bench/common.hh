/**
 * @file
 * Shared infrastructure for the benchmark harness: paper reference
 * values, speedup math, and table formatting.
 */

#ifndef HMTX_BENCH_COMMON_HH
#define HMTX_BENCH_COMMON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "runtime/executors.hh"
#include "smtx/smtx.hh"
#include "workloads/all.hh"

namespace hmtx::bench
{

/** Reference values transcribed from the paper for side-by-side
 *  comparison in the regenerated tables. */
struct PaperRef
{
    /** Table 1: average speculative accesses per TX. */
    double accPerTx;
    /** Table 1: aborts avoided via SLA per TX. */
    double slaAvoidedPerTx;
    /** Table 1: % of speculative loads needing an SLA. */
    double slaNeededPct;
    /** Table 1: % branch instructions inside the hot loop. */
    double branchPct;
    /** Table 1: branch misprediction rate inside the hot loop (%). */
    double mispredictPct;
    /** Figure 9: average combined R/W set (kB). */
    double combinedSetKB;
    /** Figure 8: hot-loop speedup, HMTX max R/W, 4 cores. */
    double hmtxSpeedup;
    /** Figure 8: hot-loop speedup, SMTX min R/W, 4 cores (0 = none). */
    double smtxSpeedup;
};

/** Per-benchmark reference data (Table 1, Figures 8 and 9). Figure
 *  bar heights are read off the plots to ~0.05 accuracy. */
inline const std::map<std::string, PaperRef>&
paperRefs()
{
    static const std::map<std::string, PaperRef> refs = {
        {"052.alvinn",
         {2290717, 0.158, 1.28, 11.5, 0.245, 350, 2.4, 1.9}},
        {"130.li",
         {181844120, 22.5, 4.21, 20.5, 3.65, 4000, 1.6, 1.2}},
        {"164.gzip",
         {6248356, 3.32, 7.08, 14.6, 2.68, 500, 1.9, 1.3}},
        {"186.crafty",
         {4498903, 1.50, 4.92, 13.1, 5.59, 600, 2.2, 0.0}},
        {"197.parser",
         {24733144, 24.6, 2.56, 19.2, 1.05, 1400, 1.8, 1.2}},
        {"256.bzip2",
         {131271380, 17.3, 6.04, 12.6, 1.33, 16222, 1.7, 1.1}},
        {"456.hmmer",
         {1709195, 0.187, 1.40, 4.83, 1.03, 300, 2.6, 2.1}},
        {"ispell",
         {43752, 0.0280, 13.0, 16.6, 2.82, 60, 1.9, 0.0}},
    };
    return refs;
}

/** Geometric mean of a non-empty vector. */
inline double
geomean(const std::vector<double>& v)
{
    double logSum = 0;
    for (double x : v)
        logSum += std::log(x);
    return std::exp(logSum / static_cast<double>(v.size()));
}

/** Hot-loop speedup of @p par relative to @p seq. */
inline double
speedup(const runtime::ExecResult& seq, const runtime::ExecResult& par)
{
    return static_cast<double>(seq.cycles) /
        static_cast<double>(par.cycles);
}

/**
 * Whole-program speedup via Amdahl's law given the hot loop's share
 * of native execution time (Table 1); used for Figure 2.
 */
inline double
wholeProgramSpeedup(double hotFraction, double hotSpeedup)
{
    return 1.0 / ((1.0 - hotFraction) + hotFraction / hotSpeedup);
}

/** Prints a horizontal rule sized for the standard table width. */
inline void
rule(unsigned width = 78)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Name of the event engine @p cfg selects. */
inline const char*
engineName(const sim::MachineConfig& cfg)
{
    return cfg.engine == sim::SimEngine::Parallel ? "parallel"
                                                  : "sequential";
}

/**
 * Applies the HMTX_ENGINE / HMTX_ENGINE_THREADS / HMTX_FASTPATH /
 * HMTX_APPLY_COMMUTE environment knobs to @p cfg and returns the
 * resulting engine name. HMTX_ENGINE is "sequential" or "parallel"
 * (DESIGN.md §11; results are bit-identical either way);
 * HMTX_ENGINE_THREADS follows the MachineConfig::engineThreads
 * encoding (0 auto, 1 inline, >=2 forced). HMTX_FASTPATH ("on"/"off")
 * toggles the zero-event hit fast path and HMTX_APPLY_COMMUTE
 * ("on"/"off") the commute-aware batch apply (both DESIGN.md §13;
 * also bit-identical — they change host time and sim.fastpath.* /
 * sim.parallel.apply.* counters only). Every bench applies this to
 * each config it builds, so one environment variable flips a whole
 * run onto the parallel engine or the fast path.
 */
inline const char*
applyEngineEnv(sim::MachineConfig& cfg)
{
    auto onOff = [](const char* name, const char* v) {
        if (std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0)
            return true;
        if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0)
            return false;
        std::fprintf(stderr, "FATAL: %s=%s (want on or off)\n", name,
                     v);
        std::abort();
    };
    if (const char* e = std::getenv("HMTX_ENGINE")) {
        if (std::strcmp(e, "parallel") == 0) {
            cfg.engine = sim::SimEngine::Parallel;
        } else if (std::strcmp(e, "sequential") == 0) {
            cfg.engine = sim::SimEngine::Sequential;
        } else {
            std::fprintf(stderr,
                         "FATAL: HMTX_ENGINE=%s (want sequential or "
                         "parallel)\n",
                         e);
            std::abort();
        }
    }
    if (const char* t = std::getenv("HMTX_ENGINE_THREADS"))
        cfg.engineThreads =
            static_cast<unsigned>(std::strtoul(t, nullptr, 0));
    if (const char* f = std::getenv("HMTX_FASTPATH"))
        cfg.fastPath = onOff("HMTX_FASTPATH", f);
    if (const char* c = std::getenv("HMTX_APPLY_COMMUTE"))
        cfg.applyCommute = onOff("HMTX_APPLY_COMMUTE", c);
    return engineName(cfg);
}

/**
 * Serving-bench knobs (HMTX_SERVE_*). Unset fields keep the bench
 * defaults: theta/writeRatio/burstDuty stay negative and ops stays 0,
 * so callers test `>= 0` / `> 0` before overriding. HMTX_SERVE_THETA
 * and HMTX_SERVE_WRITE_RATIO collapse the respective sweep axis to
 * the single given value; HMTX_SERVE_OPS overrides requests per cell
 * and HMTX_SERVE_BURST_DUTY the ON-fraction of the bursty arrival
 * process (1.0 = smooth open loop).
 */
struct ServeEnv
{
    double theta = -1.0;
    double writeRatio = -1.0;
    std::uint64_t ops = 0;
    double burstDuty = -1.0;
};

inline ServeEnv
serveEnv()
{
    auto fatal = [](const char* name, const char* v) {
        std::fprintf(stderr, "FATAL: %s=%s (want a number)\n", name,
                     v);
        std::abort();
    };
    auto num = [&](const char* name, double lo, double hi) {
        const char* v = std::getenv(name);
        if (!v)
            return -1.0;
        char* end = nullptr;
        const double d = std::strtod(v, &end);
        if (end == v || *end != '\0' || d < lo || d > hi)
            fatal(name, v);
        return d;
    };
    ServeEnv e;
    e.theta = num("HMTX_SERVE_THETA", 0.0, 4.0);
    e.writeRatio = num("HMTX_SERVE_WRITE_RATIO", 0.0, 1.0);
    const double ops = num("HMTX_SERVE_OPS", 1.0, 1e9);
    if (ops > 0)
        e.ops = static_cast<std::uint64_t>(ops);
    e.burstDuty = num("HMTX_SERVE_BURST_DUTY", 0.01, 1.0);
    return e;
}

/** Verifies checksum equality and aborts the bench loudly if the
 *  parallel run diverged from sequential semantics. */
inline void
requireChecksum(const std::string& bench,
                const runtime::ExecResult& seq,
                const runtime::ExecResult& par)
{
    if (seq.checksum != par.checksum) {
        std::fprintf(stderr,
                     "FATAL: %s: %s produced checksum %016llx, "
                     "sequential produced %016llx\n",
                     bench.c_str(), par.model.c_str(),
                     static_cast<unsigned long long>(par.checksum),
                     static_cast<unsigned long long>(seq.checksum));
        std::abort();
    }
}

} // namespace hmtx::bench

#endif // HMTX_BENCH_COMMON_HH
