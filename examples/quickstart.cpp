/**
 * @file
 * Quickstart: the Figure 3 linked-list loop, end to end.
 *
 * Builds a pointer-chased linked list in simulated memory, runs the
 * original sequential loop, then runs the speculative PS-DSWP version
 * on the 4-core HMTX machine of Table 2 — stage 1 chases `node =
 * node->next` and publishes each node through versioned memory
 * (beginMTX / producedNode), replicated stage-2 workers run the work
 * function inside the same multithreaded transactions, and
 * commitMTX group-commits each one in program order.
 */

#include <cinttypes>
#include <cstdio>

#include "runtime/executors.hh"
#include "workloads/linked_list.hh"

using namespace hmtx;

int
main()
{
    // The machine of Table 2: 4 cores, 64 KB L1s, shared 32 MB L2,
    // MOESI + the HMTX extensions, 6-bit VIDs.
    sim::MachineConfig cfg;

    workloads::LinkedListWorkload::Params params;
    params.nodes = 400;     // loop iterations
    params.workRounds = 60; // work(node) cost
    workloads::LinkedListWorkload seqLoop(params);
    workloads::LinkedListWorkload parLoop(params);

    std::printf("HMTX quickstart: Figure 3's linked-list loop, "
                "%" PRIu64 " iterations\n\n",
                params.nodes);

    // 1. The original program: while (node) { work(node); ... }
    runtime::ExecResult seq =
        runtime::Runner::runSequential(seqLoop, cfg);
    std::printf("sequential:    %10" PRIu64 " cycles\n", seq.cycles);

    // 2. Speculative PS-DSWP with hardware MTXs: every load and
    //    store inside each transaction is validated by the cache
    //    hierarchy (the maximal read/write set of §6.1).
    runtime::ExecResult par = runtime::Runner::runHmtx(parLoop, cfg);
    std::printf("HMTX PS-DSWP:  %10" PRIu64 " cycles   (%.2fx)\n",
                par.cycles,
                static_cast<double>(seq.cycles) /
                    static_cast<double>(par.cycles));

    // 3. The parallelization preserved the program's semantics
    //    (§4.3): identical output, and with high-confidence
    //    speculation, zero misspeculation (§6.3).
    std::printf("\nchecksums:     %016" PRIx64 " (sequential)\n"
                "               %016" PRIx64 " (parallel)   -> %s\n",
                seq.checksum, par.checksum,
                seq.checksum == par.checksum ? "identical" : "BUG");
    std::printf("transactions:  %" PRIu64 " committed, %" PRIu64
                " aborted\n",
                par.transactions, par.stats.aborts);
    std::printf("validation:    %" PRIu64 " speculative accesses "
                "(avg %.0f per transaction)\n",
                par.stats.specLoads + par.stats.specStores,
                par.stats.avgSpecAccessesPerTx());
    std::printf("R/W sets:      %.2f kB read + %.2f kB written per "
                "transaction (avg)\n",
                par.stats.avgReadSetKB(), par.stats.avgWriteSetKB());
    return seq.checksum == par.checksum ? 0 : 1;
}
