/**
 * @file
 * Domain example: drive any of the paper's 8 benchmarks under any
 * execution model from the command line.
 *
 *   benchmark_driver [benchmark] [model]
 *
 *   benchmark: 052.alvinn | 130.li | 164.gzip | 186.crafty |
 *              197.parser | 256.bzip2 | 456.hmmer | ispell
 *   model:     seq | hmtx | smtx-min | smtx-max
 *
 * With no arguments it sweeps 197.parser through all four models and
 * prints a comparison — a miniature of the paper's whole evaluation.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "runtime/executors.hh"
#include "sim/stats_report.hh"
#include "smtx/smtx.hh"
#include "workloads/all.hh"

using namespace hmtx;

namespace
{

runtime::ExecResult
runModel(const std::string& bench, const std::string& model,
         const sim::MachineConfig& cfg)
{
    auto wl = workloads::makeByName(bench);
    if (!wl) {
        std::fprintf(stderr, "unknown benchmark '%s'\n",
                     bench.c_str());
        std::exit(1);
    }
    if (model == "seq")
        return runtime::Runner::runSequential(*wl, cfg);
    if (model == "hmtx")
        return runtime::Runner::runHmtx(*wl, cfg);
    if (model == "smtx-min")
        return smtx::SmtxRunner::run(*wl, cfg,
                                     smtx::RwSetMode::Minimal);
    if (model == "smtx-max")
        return smtx::SmtxRunner::run(*wl, cfg,
                                     smtx::RwSetMode::Maximal);
    std::fprintf(stderr, "unknown model '%s'\n", model.c_str());
    std::exit(1);
}

void
report(const runtime::ExecResult& r, const runtime::ExecResult* seq)
{
    std::printf("%-16s %10" PRIu64 " cycles", r.model.c_str(),
                r.cycles);
    if (seq && seq->cycles)
        std::printf("  %5.2fx", static_cast<double>(seq->cycles) /
                                    static_cast<double>(r.cycles));
    std::printf("  insts=%-8" PRIu64 " busTxns=%-7" PRIu64
                " aborts=%" PRIu64 "\n",
                r.instructions, r.stats.busTxns, r.stats.aborts);
    if (seq && r.checksum != seq->checksum) {
        std::fprintf(stderr, "OUTPUT MISMATCH vs sequential!\n");
        std::exit(1);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    sim::MachineConfig cfg; // Table 2 defaults

    std::string bench = argc > 1 ? argv[1] : "197.parser";
    if (argc > 2) {
        runtime::ExecResult seq = runModel(bench, "seq", cfg);
        runtime::ExecResult r = runModel(bench, argv[2], cfg);
        report(seq, nullptr);
        report(r, &seq);
        std::printf("\n--- full statistics (%s) ---\n",
                    r.model.c_str());
        sim::StatsReport(r.stats, &r.indexStats, &r.shardStats,
                         &r.parStats, &cfg, &r.txStats)
            .print();
        return 0;
    }

    std::printf("%s under every execution model (4 cores):\n\n",
                bench.c_str());
    runtime::ExecResult seq = runModel(bench, "seq", cfg);
    report(seq, nullptr);
    for (const char* m : {"hmtx", "smtx-min", "smtx-max"})
        report(runModel(bench, m, cfg), &seq);
    std::printf("\nHMTX validates every load and store in hardware; "
                "SMTX-max pays a queue record per\naccess and "
                "SMTX-min needed an expert to shrink the sets by "
                "hand (§2.3, §6.1).\n");
    return 0;
}
