/**
 * @file
 * Domain example: VID overflow and reset (§4.6) made visible.
 *
 * Runs the same 120-iteration pipeline with 3-, 4-, 6- and 8-bit VID
 * fields. With m bits the hardware can name 2^m - 1 concurrent
 * transactions before the software must drain the pipeline, send a
 * VID Reset to the memory system, and restart numbering at 1 — the
 * stalls are measured and printed, showing why the paper "settled on
 * 6 as a fair medium".
 */

#include <cinttypes>
#include <cstdio>

#include "runtime/executors.hh"
#include "workloads/linked_list.hh"

using namespace hmtx;

int
main()
{
    workloads::LinkedListWorkload::Params p;
    p.nodes = 120;
    p.workRounds = 40;

    std::printf("VID overflow & reset (§4.6): %" PRIu64
                " transactions through m-bit VID windows\n\n",
                p.nodes);
    std::printf("%-6s %-10s %-12s %-12s %-14s %-10s\n", "m",
                "VIDs", "cycles", "VID resets", "stall cycles",
                "speedup");

    workloads::LinkedListWorkload seqWl(p);
    sim::MachineConfig base;
    runtime::ExecResult seq =
        runtime::Runner::runSequential(seqWl, base);

    for (unsigned bits : {3u, 4u, 6u, 8u}) {
        sim::MachineConfig cfg;
        cfg.vidBits = bits;
        workloads::LinkedListWorkload wl(p);
        runtime::ExecResult r = runtime::Runner::runHmtx(wl, cfg);
        if (r.checksum != seq.checksum) {
            std::fprintf(stderr, "output mismatch at m=%u!\n", bits);
            return 1;
        }
        std::printf("%-6u %-10u %-12" PRIu64 " %-12" PRIu64
                    " %-14" PRIu64 " %5.2fx\n",
                    bits, (1u << bits) - 1, r.cycles, r.vidResets,
                    r.vidStallCycles,
                    static_cast<double>(seq.cycles) /
                        static_cast<double>(r.cycles));
    }

    std::printf("\nEvery window exhaustion stalls new transactions "
                "until the max-VID transaction\ncommits and all "
                "cache-line VIDs flash back to (0,0); correctness is "
                "unaffected\n(identical checksums), only "
                "performance.\n");
    return 0;
}
