/**
 * @file
 * Tutorial: writing your own speculatively parallel loop.
 *
 * The scenario: a log-analytics loop that walks a linked chain of log
 * records (the loop-carried dependence), and for each record scans a
 * shared read-only keyword table and writes a per-record match
 * bitmap. It is exactly the shape §2 motivates — a pointer chase
 * feeding independent heavy work — so it parallelizes as PS-DSWP with
 * hardware MTXs, with zero changes to the loop body's memory
 * accesses.
 *
 * The steps, in order:
 *   1. derive from ChasedListWorkload (stage 1 — the pointer chase —
 *      comes for free, including abort-recovery restart);
 *   2. allocate data in setup(): shared read-only tables anywhere,
 *      per-iteration *written* data in an IterRegion so concurrent
 *      transactions never collide on a cache line;
 *   3. implement stage2() against MemIf — plain loads/stores/branches;
 *   4. implement checksum() so every execution model can be verified
 *      against sequential execution.
 */

#include <cinttypes>
#include <cstdio>

#include "runtime/executors.hh"
#include "smtx/smtx.hh"
#include "workloads/worklist.hh"

using namespace hmtx;
using namespace hmtx::workloads;

namespace
{

class LogScanWorkload : public ChasedListWorkload
{
  public:
    static constexpr std::uint64_t kRecords = 120;
    static constexpr unsigned kWordsPerRecord = 40;
    static constexpr unsigned kKeywords = 64;

    std::string name() const override { return "log_scan"; }
    std::uint64_t iterations() const override { return kRecords; }

    void
    setup(runtime::Machine& m) override
    {
        auto& mem = m.sys().memory();

        // Shared read-only keyword table: every transaction reads
        // it; HMTX shares it efficiently through S-S copies (§4.1).
        keywords_ = m.heap().allocWords(kKeywords);
        for (unsigned k = 0; k < kKeywords; ++k)
            mem.write(keywords_ + k * 8, mix64(0xFEED ^ k) & 0xffff,
                      8);

        // The records themselves (read-only payloads).
        records_ = m.heap().allocWords(kRecords * kWordsPerRecord);
        for (std::uint64_t r = 0; r < kRecords; ++r)
            for (unsigned w = 0; w < kWordsPerRecord; ++w)
                mem.write(records_ + (r * kWordsPerRecord + w) * 8,
                          mix64(0xAB ^ (r << 8) ^ w) & 0xffff, 8);

        // Per-record output: one line-disjoint chunk per iteration,
        // so concurrent transactions never share a written line.
        bitmaps_.init(m, kRecords, 1);

        // The work list is the linked chain of records; its traversal
        // is the loop-carried dependence stage 1 speculates through.
        std::vector<std::uint64_t> payloads(kRecords);
        for (std::uint64_t r = 0; r < kRecords; ++r)
            payloads[r] = records_ + r * kWordsPerRecord * 8;
        initWorkList(m, payloads);
    }

    sim::Task<void>
    stage2(runtime::MemIf& mem, std::uint64_t iter) override
    {
        // The record address arrives from stage 1 through versioned
        // memory — the producedNode idiom of Figure 3.
        Addr rec = co_await fetchWork(mem, iter);

        std::uint64_t bitmap = 0;
        for (unsigned w = 0; w < kWordsPerRecord; ++w) {
            std::uint64_t word = co_await mem.load(rec + w * 8);
            // Probe the shared keyword table.
            std::uint64_t kw = co_await mem.load(
                keywords_ + (word % kKeywords) * 8);
            bool hit = ((word ^ kw) & 0xff) == 0;
            co_await mem.branch(0xC00, hit);
            if (hit)
                bitmap |= std::uint64_t{1} << (w % 64);
            co_await mem.compute(2);
        }
        co_await mem.store(bitmaps_.at(iter), bitmap);
    }

    std::uint64_t
    checksum(runtime::Machine& m) override
    {
        std::uint64_t s = 0;
        for (std::uint64_t r = 0; r < kRecords; ++r)
            s = mix64(s ^ m.sys().memory().read(bitmaps_.at(r), 8));
        return s;
    }

  private:
    Addr keywords_ = 0;
    Addr records_ = 0;
    IterRegion bitmaps_;
};

} // namespace

int
main()
{
    sim::MachineConfig cfg; // the Table 2 machine

    LogScanWorkload seq, hm, sm;
    runtime::ExecResult rs = runtime::Runner::runSequential(seq, cfg);
    runtime::ExecResult rh = runtime::Runner::runHmtx(hm, cfg);
    runtime::ExecResult rm =
        smtx::SmtxRunner::run(sm, cfg, smtx::RwSetMode::Maximal);

    std::printf("custom workload 'log_scan' (%" PRIu64
                " records) across execution models:\n\n",
                LogScanWorkload::kRecords);
    std::printf("  %-18s %10" PRIu64 " cycles\n", "sequential",
                rs.cycles);
    std::printf("  %-18s %10" PRIu64 " cycles  (%.2fx, %" PRIu64
                " TXs, %" PRIu64 " aborts)\n",
                rh.model.c_str(), rh.cycles,
                double(rs.cycles) / double(rh.cycles),
                rh.transactions, rh.stats.aborts);
    std::printf("  %-18s %10" PRIu64 " cycles  (%.2fx)\n",
                rm.model.c_str(), rm.cycles,
                double(rs.cycles) / double(rm.cycles));

    bool ok = rh.checksum == rs.checksum && rm.checksum == rs.checksum;
    std::printf("\noutputs: %s\n",
                ok ? "all models identical" : "MISMATCH (bug)");
    std::printf("\nThe loop body never mentions transactions: the "
                "executor brackets each\niteration with "
                "beginMTX/commitMTX, the hardware validates every "
                "access, and the\nsame body runs under SMTX for "
                "comparison.\n");
    return ok ? 0 : 1;
}
