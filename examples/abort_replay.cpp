/**
 * @file
 * Domain example: misspeculation, abort, and recovery.
 *
 * Figure 3 speculates that the `if (w > MAX) break` early exit never
 * fires; this example makes the equivalent speculation *fail* once: a
 * transaction's stage 2 writes a flag that later iterations' stage 1
 * already read. The HMTX system detects the flow-dependence violation
 * (§4.3), flushes all uncommitted transactional state (Figure 7), and
 * the runtime replays from the last committed iteration — the
 * initMTX recovery path of §3.1 — still producing the sequential
 * result.
 */

#include <cinttypes>
#include <cstdio>

#include "runtime/executors.hh"
#include "runtime/thread_context.hh"
#include "workloads/linked_list.hh"

using namespace hmtx;

namespace
{

/** Linked-list loop whose iteration 25 violates the control-flow
 *  speculation exactly once. */
class MisspeculatingLoop : public workloads::LinkedListWorkload
{
  public:
    explicit MisspeculatingLoop(Params p)
        : LinkedListWorkload(p)
    {}

    void
    setup(runtime::Machine& m) override
    {
        LinkedListWorkload::setup(m);
        flag_ = m.heap().allocLines(1);
        fired_ = false;
    }

    sim::Task<void>
    stage1(runtime::MemIf& mem, std::uint64_t iter) override
    {
        // The speculated-away check: stage 1 reads the exit flag
        // every iteration, far ahead of where stage 2 computes it.
        co_await mem.load(flag_);
        co_await LinkedListWorkload::stage1(mem, iter);
    }

    sim::Task<void>
    stage2(runtime::MemIf& mem, std::uint64_t iter) override
    {
        if (iter == 25 && !fired_) {
            fired_ = true;
            // Let later iterations get ahead, then violate the
            // dependence — w exceeded MAX this one time.
            co_await mem.compute(3000);
            co_await mem.store(flag_, 1);
        }
        co_await LinkedListWorkload::stage2(mem, iter);
    }

  private:
    Addr flag_ = 0;
    bool fired_ = false;
};

} // namespace

int
main()
{
    workloads::LinkedListWorkload::Params p;
    p.nodes = 80;
    p.workRounds = 30;

    sim::MachineConfig cfg;
    workloads::LinkedListWorkload seqWl(p);
    runtime::ExecResult seq =
        runtime::Runner::runSequential(seqWl, cfg);

    MisspeculatingLoop par(p);
    runtime::ExecResult r = runtime::Runner::runHmtx(par, cfg);

    std::printf("misspeculation, abort & replay (§3.1, §4.3/4.4)\n\n");
    std::printf("aborts detected + flushed: %" PRIu64 "\n",
                r.stats.aborts);
    std::printf("transactions committed:    %" PRIu64 " (of %" PRIu64
                " iterations)\n",
                r.transactions, p.nodes);
    std::printf("checksum vs sequential:    %s\n",
                r.checksum == seq.checksum ? "identical" : "BUG");
    std::printf("cycles: %" PRIu64 " (sequential %" PRIu64
                ") -> %.2fx despite the rollback\n",
                r.cycles, seq.cycles,
                static_cast<double>(seq.cycles) /
                    static_cast<double>(r.cycles));
    std::printf(
        "\nThe violating store hit a line whose highVID recorded a "
        "later reader; every\nuncommitted line flushed (modVID > LC "
        "VID -> Invalid), committed data survived,\nand the pipeline "
        "replayed from the last committed iteration.\n");
    return r.checksum == seq.checksum && r.stats.aborts > 0 ? 0 : 1;
}
